//! Plan interpreters for both execution models.
//!
//! Both interpreters are arena-disciplined: every operator draws its
//! mask/bitmap scratch from the caller's [`MaskArena`], and each
//! intermediate relation — a [`TaggedRelation`]'s slice bitmaps *and*
//! its `Arc`-shared index columns, or a traditional [`IdxRelation`] —
//! is recycled the moment the consuming operator has produced its
//! output. Together with the arena's
//! [`ColumnPool`](basilisk_types::ColumnPool) serving scan identities,
//! join outputs (`combine`) and union outputs, repeated executions of
//! one plan perform zero allocations of the pooled buffer shapes
//! (masks, bitmaps, `u32` index scratch, index columns) after warmup.
//! Only *value*-column materializations — projected outputs and gathered
//! join-key/predicate values — remain ordinary allocations (see
//! ROADMAP).

use basilisk_core::ProjectionTags;
use basilisk_core::{
    filter_atom_profiles, tagged_filter, tagged_filter_par, tagged_join, tagged_join_par,
    tagged_select_final, TaggedRelation,
};
use basilisk_exec::{
    filter as plain_filter, filter_par, hash_join, hash_join_par, relation_atom_profiles,
    union_all_dedup, IdxRelation, JoinSide, TableSet,
};
use basilisk_expr::eval::AtomProfile;
use basilisk_expr::PredicateTree;
use basilisk_sched::{last_region_id, WorkerPool};
use basilisk_types::{MaskArena, Result, SpanId, Tracer};

use crate::aplan::APlan;
use crate::cost::TPlan;

/// Open an operator span when the run is traced. Spans open **before**
/// the operator's children execute, so the span tree mirrors the plan
/// tree (span durations are inclusive of their subtree).
fn span_begin(tracer: Option<&Tracer>, name: &'static str) -> Option<SpanId> {
    tracer.map(|t| t.begin(name))
}

/// Stamp the shared operator attributes and close the span: row counts,
/// how many morsels the operator's evaluation would fan out into, and —
/// when it actually fanned out — the id of the parallel region it ran as.
fn span_finish(
    tracer: Option<&Tracer>,
    span: Option<SpanId>,
    rows_in: usize,
    rows_out: usize,
    base_rows: usize,
    pool: Option<&WorkerPool>,
) {
    let (Some(t), Some(s)) = (tracer, span) else {
        return;
    };
    t.attr(s, "rows_in", rows_in);
    t.attr(s, "rows_out", rows_out);
    let fanned = pool.is_some_and(|p| p.would_parallelize(base_rows));
    let morsels = match pool {
        Some(p) if fanned => p.morsels(base_rows).len(),
        _ => 1,
    };
    t.attr(s, "morsels", morsels);
    if fanned {
        t.attr(s, "region", last_region_id());
    }
    t.end(s);
}

/// Current zone-map counters visible to this execution: the session
/// arena's plus — when the operator may fan out — every worker arena's.
/// Sampled before/after an operator to stamp `zone_skips`/`zone_scans`
/// deltas on its span (the atom profilers bypass the encoded path, so
/// tracing itself never inflates the counters).
fn zone_counters(arena: &MaskArena, pool: Option<&WorkerPool>) -> (u64, u64) {
    let s = arena.stats();
    let (mut skips, mut scans) = (s.zone_skipped_morsels, s.zone_scanned_morsels);
    if let Some(p) = pool {
        let ps = p.arena_stats();
        skips += ps.zone_skipped_morsels;
        scans += ps.zone_scanned_morsels;
    }
    (skips, scans)
}

/// Stamp the zone-map skip attributes on a span from a counter delta.
fn span_zones(
    tracer: Option<&Tracer>,
    span: Option<SpanId>,
    before: (u64, u64),
    after: (u64, u64),
) {
    let (Some(t), Some(s)) = (tracer, span) else {
        return;
    };
    t.attr(s, "zone_skips", after.0 - before.0);
    t.attr(s, "zone_scans", after.1 - before.1);
}

/// Attach one `atom` child span per profiled atom (tracing-only; the
/// profiles re-evaluate the operator's predicate subtree).
fn span_atoms(tracer: Option<&Tracer>, span: Option<SpanId>, profiles: Result<Vec<AtomProfile>>) {
    let (Some(t), Some(_)) = (tracer, span) else {
        return;
    };
    // Profiling shares the operator's evaluation path; an error here
    // would have failed the operator itself, so it is safe to drop.
    let Ok(profiles) = profiles else { return };
    for p in profiles {
        let a = t.begin("atom");
        t.attr(a, "atom", p.atom);
        t.attr(a, "lanes_evaluated", p.lanes_evaluated);
        t.attr(a, "lanes_short_circuited", p.lanes_short_circuited);
        t.attr(a, "true_count", p.true_count);
        t.attr(a, "unknown_count", p.unknown_count);
        t.end(a);
    }
}

/// Largest base-relation cardinality under a tagged subtree — the
/// size proxy the subtree-shipping heuristic compares against the morsel
/// threshold (unknown aliases pessimize to `usize::MAX`, which simply
/// keeps the subtree on the coordinator; the real error surfaces when the
/// subtree executes).
fn max_base_rows_tagged(plan: &TPlan, tables: &TableSet) -> usize {
    match plan {
        TPlan::Scan { alias } => tables.num_rows(alias).unwrap_or(usize::MAX),
        TPlan::Filter { child, .. } => max_base_rows_tagged(child, tables),
        TPlan::Join { left, right, .. } => {
            max_base_rows_tagged(left, tables).max(max_base_rows_tagged(right, tables))
        }
    }
}

/// Largest base-relation cardinality under an abstract subtree.
fn max_base_rows_abstract(plan: &APlan, tables: &TableSet) -> usize {
    match plan {
        APlan::Scan { alias } => tables.num_rows(alias).unwrap_or(usize::MAX),
        APlan::Filter { child, .. } => max_base_rows_abstract(child, tables),
        APlan::Join { left, right, .. } => {
            max_base_rows_abstract(left, tables).max(max_base_rows_abstract(right, tables))
        }
        APlan::Union { children } => children
            .iter()
            .map(|c| max_base_rows_abstract(c, tables))
            .max()
            .unwrap_or(0),
    }
}

/// Whether a tagged subtree should be **shipped** to the pool as one
/// schedulable task: it does real work (not a bare scan, whose pooled
/// identity allocation is cheaper than a region) and it is small enough
/// that none of its operators would have fanned out morsel-parallel —
/// shipping it serial therefore *adds* parallelism (the subtree overlaps
/// its sibling and other sessions' regions) without ever taking
/// morsel-level parallelism away from a large subtree.
fn ships_tagged(pool: &WorkerPool, plan: &TPlan, tables: &TableSet) -> bool {
    !matches!(plan, TPlan::Scan { .. })
        && !pool.would_parallelize(max_base_rows_tagged(plan, tables))
}

/// [`ships_tagged`] for abstract subtrees (the traditional interpreter).
fn ships_abstract(pool: &WorkerPool, plan: &APlan, tables: &TableSet) -> bool {
    !matches!(plan, APlan::Scan { .. })
        && !pool.would_parallelize(max_base_rows_abstract(plan, tables))
}

/// Execute a tagged physical plan, returning the final (projected) index
/// relation.
pub fn execute_tagged(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    execute_tagged_impl(plan, projection, tables, tree, arena, None, None)
}

/// [`execute_tagged`] in **parallel mode**: every filter evaluates
/// morsel-parallel and every join probes partitioned on `pool`'s workers
/// (the operators fall back to their serial paths per relation when it
/// is too small to fan out, so this is safe to use unconditionally).
/// Output is identical to serial execution.
pub fn execute_tagged_with(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    execute_tagged_impl(plan, projection, tables, tree, arena, Some(pool), None)
}

/// [`execute_tagged_with`] with an optional per-request [`Tracer`]: each
/// operator records a span (nested to mirror the plan tree) carrying
/// `rows_in`/`rows_out`, its morsel fan-out, the parallel-region id it
/// ran as, and — for filters — one `atom` child span per predicate atom
/// with its lane-evaluation profile. Traced runs keep every operator on
/// the coordinating thread (subtree shipping is disabled, because the
/// tracer is single-threaded by design), but output is bit-for-bit
/// identical to the untraced run.
pub fn execute_tagged_traced(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
    tracer: Option<&Tracer>,
) -> Result<IdxRelation> {
    execute_tagged_impl(plan, projection, tables, tree, arena, pool, tracer)
}

#[allow(clippy::too_many_arguments)]
fn execute_tagged_impl(
    plan: &TPlan,
    projection: &ProjectionTags,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
    tracer: Option<&Tracer>,
) -> Result<IdxRelation> {
    let rel = run_tagged(plan, tables, tree, arena, pool, tracer)?;
    let span = span_begin(tracer, "project");
    let out = tagged_select_final(&rel, projection, arena);
    if tracer.is_some() {
        span_finish(tracer, span, rel.num_tagged_tuples(), out.len(), 0, None);
    }
    rel.recycle(arena);
    Ok(out)
}

fn run_tagged(
    plan: &TPlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
    tracer: Option<&Tracer>,
) -> Result<TaggedRelation> {
    match plan {
        TPlan::Scan { alias } => {
            let span = span_begin(tracer, "scan");
            let zones_before = tracer.is_some().then(|| zone_counters(arena, pool));
            let rel = TaggedRelation::base_in(
                IdxRelation::base_in(alias.clone(), tables.num_rows(alias)?, arena),
                arena,
            );
            if let Some(before) = zones_before {
                span_zones(tracer, span, before, zone_counters(arena, pool));
            }
            span_finish(tracer, span, 0, rel.num_tuples(), 0, None);
            Ok(rel)
        }
        TPlan::Filter { map, child, .. } => {
            let span = span_begin(tracer, "tagged_filter");
            let input = run_tagged(child, tables, tree, arena, pool, tracer)?;
            let zones_before = tracer.is_some().then(|| zone_counters(arena, pool));
            let out = match pool {
                Some(p) => tagged_filter_par(tables, &input, tree, map, arena, p),
                None => tagged_filter(tables, &input, tree, map, arena),
            };
            if let Some(before) = zones_before {
                span_zones(tracer, span, before, zone_counters(arena, pool));
                span_atoms(
                    tracer,
                    span,
                    filter_atom_profiles(tables, &input, tree, map, arena),
                );
                let rows_out = out.as_ref().map(|o| o.num_tagged_tuples()).unwrap_or(0);
                span_finish(
                    tracer,
                    span,
                    input.num_tagged_tuples(),
                    rows_out,
                    input.num_tuples(),
                    pool,
                );
            }
            input.recycle(arena);
            out
        }
        TPlan::Join {
            cond,
            map,
            left,
            right,
        } => {
            let span = span_begin(tracer, "tagged_join");
            // Independent-subtree parallelism: when both inputs are
            // small serial subtrees, ship them as one two-task region —
            // they evaluate concurrently on two workers (and interleave
            // with other sessions' regions) while this thread waits.
            // Each result's buffers live in the producing worker's arena
            // and are recycled back into it; the join output itself is
            // built from the session arena as usual. Shipped subtrees run
            // with `pool: None` — a task must never re-enter the pool.
            // Traced runs never ship: the tracer is bound to this thread.
            if let Some(p) = pool {
                if tracer.is_none()
                    && ships_tagged(p, left, tables)
                    && ships_tagged(p, right, tables)
                {
                    let ((wl, l), (wr, r)) = p.run_pair(
                        |ctx| run_tagged(left, tables, tree, ctx.arena, None, None),
                        |ctx| run_tagged(right, tables, tree, ctx.arena, None, None),
                        |a, rel| rel.recycle(a),
                        |a, rel| rel.recycle(a),
                    )?;
                    let out =
                        tagged_join_par(tables, &l, &r, &cond.left, &cond.right, map, arena, p);
                    p.with_arena(wl, |a| l.recycle(a));
                    p.with_arena(wr, |a| r.recycle(a));
                    return out;
                }
            }
            let l = run_tagged(left, tables, tree, arena, pool, tracer)?;
            // A failing right subtree must not strand the left's buffers.
            let r = match run_tagged(right, tables, tree, arena, pool, tracer) {
                Ok(r) => r,
                Err(e) => {
                    l.recycle(arena);
                    return Err(e);
                }
            };
            let out = match pool {
                Some(p) => tagged_join_par(tables, &l, &r, &cond.left, &cond.right, map, arena, p),
                None => tagged_join(tables, &l, &r, &cond.left, &cond.right, map, arena),
            };
            if tracer.is_some() {
                let rows_out = out.as_ref().map(|o| o.num_tagged_tuples()).unwrap_or(0);
                span_finish(
                    tracer,
                    span,
                    l.num_tagged_tuples() + r.num_tagged_tuples(),
                    rows_out,
                    l.num_tuples().max(r.num_tuples()),
                    pool,
                );
            }
            l.recycle(arena);
            r.recycle(arena);
            out
        }
    }
}

/// Execute an abstract plan under the traditional model: filters keep
/// *true* tuples, joins are plain hash joins, unions deduplicate.
///
/// Intermediate relations are recycled into the arena's column pool as
/// soon as the consuming operator has produced its output, mirroring the
/// tagged interpreter's discipline — so the traditional path is equally
/// allocation-free in steady state.
pub fn execute_traditional(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
) -> Result<IdxRelation> {
    execute_traditional_impl(plan, tables, tree, arena, None, None)
}

/// [`execute_traditional`] in **parallel mode** (see
/// [`execute_tagged_with`]): parallel filters and partitioned join
/// probes; unions deduplicate serially (the dedup table is inherently
/// order-dependent), over child plans that were themselves executed in
/// parallel.
pub fn execute_traditional_with(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<IdxRelation> {
    execute_traditional_impl(plan, tables, tree, arena, Some(pool), None)
}

/// [`execute_traditional_with`] with an optional per-request [`Tracer`]
/// (see [`execute_tagged_traced`] for the span contract; traditional
/// filter spans carry the same per-atom profile children, evaluated over
/// every input tuple since the traditional path cannot short-circuit
/// across lanes).
pub fn execute_traditional_traced(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
    tracer: Option<&Tracer>,
) -> Result<IdxRelation> {
    execute_traditional_impl(plan, tables, tree, arena, pool, tracer)
}

fn execute_traditional_impl(
    plan: &APlan,
    tables: &TableSet,
    tree: &PredicateTree,
    arena: &MaskArena,
    pool: Option<&WorkerPool>,
    tracer: Option<&Tracer>,
) -> Result<IdxRelation> {
    match plan {
        APlan::Scan { alias } => {
            let span = span_begin(tracer, "scan");
            let zones_before = tracer.is_some().then(|| zone_counters(arena, pool));
            let rel = IdxRelation::base_in(alias.clone(), tables.num_rows(alias)?, arena);
            if let Some(before) = zones_before {
                span_zones(tracer, span, before, zone_counters(arena, pool));
            }
            span_finish(tracer, span, 0, rel.len(), 0, None);
            Ok(rel)
        }
        APlan::Filter { node, child } => {
            let span = span_begin(tracer, "filter");
            let input = execute_traditional_impl(child, tables, tree, arena, pool, tracer)?;
            let zones_before = tracer.is_some().then(|| zone_counters(arena, pool));
            let out = match pool {
                Some(p) => filter_par(tables, &input, tree, *node, arena, p),
                None => plain_filter(tables, &input, tree, *node, arena),
            };
            if let Some(before) = zones_before {
                span_zones(tracer, span, before, zone_counters(arena, pool));
                span_atoms(
                    tracer,
                    span,
                    relation_atom_profiles(tables, &input, tree, *node, arena),
                );
                let rows_out = out.as_ref().map(|o| o.len()).unwrap_or(0);
                span_finish(tracer, span, input.len(), rows_out, input.len(), pool);
            }
            input.recycle(arena);
            out
        }
        APlan::Join { cond, left, right } => {
            let span = span_begin(tracer, "hash_join");
            // Same independent-subtree shipping as the tagged
            // interpreter (see `run_tagged`): both small inputs evaluate
            // concurrently as one region. Traced runs never ship.
            if let Some(p) = pool {
                if tracer.is_none()
                    && ships_abstract(p, left, tables)
                    && ships_abstract(p, right, tables)
                {
                    let ((wl, l), (wr, r)) = p.run_pair(
                        |ctx| execute_traditional_impl(left, tables, tree, ctx.arena, None, None),
                        |ctx| execute_traditional_impl(right, tables, tree, ctx.arena, None, None),
                        |a, rel| rel.recycle(a),
                        |a, rel| rel.recycle(a),
                    )?;
                    let out = hash_join_par(
                        tables,
                        &l,
                        &r,
                        &cond.left,
                        &cond.right,
                        JoinSide::Smaller,
                        arena,
                        p,
                    );
                    p.with_arena(wl, |a| l.recycle(a));
                    p.with_arena(wr, |a| r.recycle(a));
                    return out;
                }
            }
            let l = execute_traditional_impl(left, tables, tree, arena, pool, tracer)?;
            // A failing right subtree must not strand the left's buffers.
            let r = match execute_traditional_impl(right, tables, tree, arena, pool, tracer) {
                Ok(r) => r,
                Err(e) => {
                    l.recycle(arena);
                    return Err(e);
                }
            };
            let out = match pool {
                Some(p) => hash_join_par(
                    tables,
                    &l,
                    &r,
                    &cond.left,
                    &cond.right,
                    JoinSide::Smaller,
                    arena,
                    p,
                ),
                None => hash_join(
                    tables,
                    &l,
                    &r,
                    &cond.left,
                    &cond.right,
                    JoinSide::Smaller,
                    arena,
                ),
            };
            if tracer.is_some() {
                let rows_out = out.as_ref().map(|o| o.len()).unwrap_or(0);
                span_finish(
                    tracer,
                    span,
                    l.len() + r.len(),
                    rows_out,
                    l.len().max(r.len()),
                    pool,
                );
            }
            l.recycle(arena);
            r.recycle(arena);
            out
        }
        APlan::Union { children } => {
            let span = span_begin(tracer, "union");
            // BDisj clause parallelism: every small serial clause ships
            // to the pool as one task of a single region, while large
            // clauses stay on this thread with full morsel parallelism.
            // The dedup fold itself runs here — its output escapes into
            // the session arena, and folding on a worker would recycle
            // session buffers into a worker arena (corrupting per-arena
            // accounting) — but it folds in original child order over
            // results produced concurrently, so output is bit-for-bit
            // the serial order. Traced runs never ship.
            let shipped_idx: Vec<usize> = match pool {
                Some(p) if tracer.is_none() => (0..children.len())
                    .filter(|&i| ships_abstract(p, &children[i], tables))
                    .collect(),
                _ => Vec::new(),
            };
            if shipped_idx.len() >= 2 {
                let p = pool.expect("shipping implies a pool");
                let shipped = p.run(
                    shipped_idx.iter().map(|&i| &children[i]).collect(),
                    |ctx, c: &APlan| {
                        execute_traditional_impl(c, tables, tree, ctx.arena, None, None)
                    },
                    |a, rel: IdxRelation| rel.recycle(a),
                )?;
                // Reassemble in child order: `home[i]` remembers which
                // arena child i's relation must be recycled into.
                let mut slots: Vec<Option<(Option<u32>, IdxRelation)>> =
                    children.iter().map(|_| None).collect();
                for (k, (w, rel)) in shipped.into_iter().enumerate() {
                    slots[shipped_idx[k]] = Some((Some(w), rel));
                }
                let mut failure = None;
                for (i, c) in children.iter().enumerate() {
                    if slots[i].is_some() {
                        continue;
                    }
                    match execute_traditional_impl(c, tables, tree, arena, pool, None) {
                        Ok(rel) => slots[i] = Some((None, rel)),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                let mut homes: Vec<Option<u32>> = Vec::with_capacity(children.len());
                let mut rels: Vec<IdxRelation> = Vec::with_capacity(children.len());
                for (home, rel) in slots.into_iter().flatten() {
                    homes.push(home);
                    rels.push(rel);
                }
                let out = match failure {
                    Some(e) => Err(e),
                    None => union_all_dedup(&rels, arena),
                };
                for (home, rel) in homes.into_iter().zip(rels) {
                    match home {
                        Some(w) => p.with_arena(w, |a| rel.recycle(a)),
                        None => rel.recycle(arena),
                    }
                }
                return out;
            }
            // Collect child results by hand so that a failing later child
            // recycles every earlier child's relation before propagating.
            let mut rels: Vec<IdxRelation> = Vec::with_capacity(children.len());
            for c in children {
                match execute_traditional_impl(c, tables, tree, arena, pool, tracer) {
                    Ok(rel) => rels.push(rel),
                    Err(e) => {
                        for rel in rels {
                            rel.recycle(arena);
                        }
                        return Err(e);
                    }
                }
            }
            let out = union_all_dedup(&rels, arena);
            if tracer.is_some() {
                let rows_in = rels.iter().map(|r| r.len()).sum();
                let rows_out = out.as_ref().map(|o| o.len()).unwrap_or(0);
                span_finish(tracer, span, rows_in, rows_out, 0, None);
            }
            for rel in rels {
                rel.recycle(arena);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{annotate_tagged, CostModel};
    use crate::query::JoinCond;
    use basilisk_catalog::{Catalog, Estimator};
    use basilisk_core::{TagMapBuilder, TagMapStrategy};
    use basilisk_expr::{and, col, or, ColumnRef};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn arena() -> MaskArena {
        MaskArena::new()
    }

    fn setup() -> (Catalog, TableSet, Estimator, PredicateTree) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("year", DataType::Int);
        for i in 0..200i64 {
            b.push_row(vec![i.into(), (1900 + i % 120).into()]).unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("mi")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..300i64 {
            b.push_row(vec![(i % 200).into(), ((i % 100) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let tables = TableSet::new(
            &cat,
            &[("t".into(), "t".into()), ("mi".into(), "mi".into())],
        )
        .unwrap();
        let est = Estimator::new(
            &cat,
            &[("t".into(), "t".into()), ("mi".into(), "mi".into())],
        )
        .unwrap();
        let e = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ]);
        (cat, tables, est, PredicateTree::build(&e))
    }

    fn find(tree: &PredicateTree, s: &str) -> basilisk_expr::ExprId {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    }

    /// The golden equivalence: the same abstract pushdown plan executed
    /// tagged and a join-then-filter plan executed traditionally agree.
    #[test]
    fn tagged_equals_traditional() {
        let (_cat, tables, est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        let pushed = APlan::join(
            cond.clone(),
            APlan::filter(
                find(&tree, "t.year > 1980"),
                APlan::filter(find(&tree, "t.year > 2000"), APlan::scan("t")),
            ),
            APlan::filter(
                find(&tree, "mi.score > 7"),
                APlan::filter(find(&tree, "mi.score > 8"), APlan::scan("mi")),
            ),
        );
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let ann = annotate_tagged(&pushed, &tree, &builder, &est, &CostModel::default()).unwrap();
        let got = execute_tagged(&ann.plan, &ann.projection, &tables, &tree, &arena()).unwrap();

        let reference = APlan::filter(
            tree.root(),
            APlan::join(cond, APlan::scan("t"), APlan::scan("mi")),
        );
        let expected = execute_traditional(&reference, &tables, &tree, &arena()).unwrap();

        let mut a: Vec<(u32, u32)> = (0..got.len())
            .map(|i| (got.col("t").unwrap()[i], got.col("mi").unwrap()[i]))
            .collect();
        let mut e: Vec<(u32, u32)> = (0..expected.len())
            .map(|i| {
                (
                    expected.col("t").unwrap()[i],
                    expected.col("mi").unwrap()[i],
                )
            })
            .collect();
        a.sort_unstable();
        e.sort_unstable();
        assert!(!a.is_empty(), "query should match something");
        assert_eq!(a, e);
    }

    /// A traced tagged run returns bit-for-bit the untraced output and
    /// records a well-formed span tree mirroring the plan: the join at
    /// the top, filter chains below, per-atom profile children on every
    /// filter span, and a final `project` span with the output count.
    #[test]
    fn traced_tagged_run_matches_untraced_and_records_spans() {
        let (_cat, tables, est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        let pushed = APlan::join(
            cond,
            APlan::filter(
                find(&tree, "t.year > 1980"),
                APlan::filter(find(&tree, "t.year > 2000"), APlan::scan("t")),
            ),
            APlan::filter(
                find(&tree, "mi.score > 7"),
                APlan::filter(find(&tree, "mi.score > 8"), APlan::scan("mi")),
            ),
        );
        let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let ann = annotate_tagged(&pushed, &tree, &builder, &est, &CostModel::default()).unwrap();
        let a = arena();
        let untraced = execute_tagged(&ann.plan, &ann.projection, &tables, &tree, &a).unwrap();
        let tracer = Tracer::new();
        let traced = execute_tagged_traced(
            &ann.plan,
            &ann.projection,
            &tables,
            &tree,
            &a,
            None,
            Some(&tracer),
        )
        .unwrap();
        assert_eq!(traced.len(), untraced.len());
        for alias in ["t", "mi"] {
            let got: Vec<u32> = (0..traced.len())
                .map(|i| traced.col(alias).unwrap()[i])
                .collect();
            let want: Vec<u32> = (0..untraced.len())
                .map(|i| untraced.col(alias).unwrap()[i])
                .collect();
            assert_eq!(got, want, "traced output must be bit-for-bit untraced");
        }

        let root = tracer.finish();
        assert_eq!(root.name, "request");
        assert!(root.is_well_formed());
        let join = root.child("tagged_join").expect("top operator span");
        assert_eq!(join.descendants("scan").len(), 2);
        let filters = root.descendants("tagged_filter");
        assert_eq!(filters.len(), 4, "one span per filter operator");
        for f in &filters {
            let rows_in = f.int("rows_in").unwrap();
            let rows_out = f.int("rows_out").unwrap();
            assert!(rows_out <= rows_in);
            assert!(f.int("morsels").unwrap() >= 1);
            let atoms: Vec<_> = f.children.iter().filter(|c| c.name == "atom").collect();
            assert!(!atoms.is_empty(), "filter spans carry atom profiles");
            for at in atoms {
                assert!(at.str_attr("atom").is_some());
                let eval = at.int("lanes_evaluated").unwrap();
                assert!(at.int("true_count").unwrap() <= eval);
                assert!(at.int("lanes_short_circuited").unwrap() >= 0);
                assert!(at.int("unknown_count").unwrap() >= 0);
            }
        }
        let project = root.child("project").expect("projection span");
        assert_eq!(project.int("rows_out"), Some(traced.len() as i64));
        // Operator rows flow consistently into the final output.
        assert_eq!(join.int("rows_out"), project.int("rows_in"));
    }

    /// The traditional interpreter's traced union path: identical output,
    /// a `union` span whose `rows_out` matches the result, and `filter`
    /// spans with full-relation atom profiles.
    #[test]
    fn traced_union_run_matches_untraced() {
        let (_cat, tables, _est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        let clause = |y: &str, s: &str| {
            APlan::join(
                cond.clone(),
                APlan::filter(find(&tree, y), APlan::scan("t")),
                APlan::filter(find(&tree, s), APlan::scan("mi")),
            )
        };
        let u = APlan::Union {
            children: vec![
                clause("t.year > 2000", "mi.score > 7"),
                clause("t.year > 1980", "mi.score > 8"),
            ],
        };
        let a = arena();
        let untraced = execute_traditional(&u, &tables, &tree, &a).unwrap();
        let tracer = Tracer::new();
        let traced =
            execute_traditional_traced(&u, &tables, &tree, &a, None, Some(&tracer)).unwrap();
        assert_eq!(traced.len(), untraced.len());

        let root = tracer.finish();
        assert!(root.is_well_formed());
        let union = root.child("union").expect("union span");
        assert_eq!(union.int("rows_out"), Some(traced.len() as i64));
        assert_eq!(union.descendants("hash_join").len(), 2);
        let filters = root.descendants("filter");
        assert_eq!(filters.len(), 4);
        for f in &filters {
            let atoms: Vec<_> = f.children.iter().filter(|c| c.name == "atom").collect();
            assert_eq!(atoms.len(), 1, "each clause filter profiles its atom");
            // Traditional filters evaluate every input lane.
            assert_eq!(atoms[0].int("lanes_short_circuited"), Some(0));
            assert_eq!(atoms[0].int("lanes_evaluated"), f.int("rows_in"));
        }
    }

    /// Union plans (BDisj-style) dedup correctly.
    #[test]
    fn union_plan_executes() {
        let (_cat, tables, _est, tree) = setup();
        let cond = JoinCond::new(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
        // Clause plans share most matches → union must dedup.
        let clause = |y: &str, s: &str| {
            APlan::join(
                cond.clone(),
                APlan::filter(find(&tree, y), APlan::scan("t")),
                APlan::filter(find(&tree, s), APlan::scan("mi")),
            )
        };
        let u = APlan::Union {
            children: vec![
                clause("t.year > 2000", "mi.score > 7"),
                clause("t.year > 1980", "mi.score > 8"),
            ],
        };
        let got = execute_traditional(&u, &tables, &tree, &arena()).unwrap();
        let reference = APlan::filter(
            tree.root(),
            APlan::join(cond, APlan::scan("t"), APlan::scan("mi")),
        );
        let expected = execute_traditional(&reference, &tables, &tree, &arena()).unwrap();
        assert_eq!(got.len(), expected.len());
    }
}
