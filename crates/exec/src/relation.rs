//! Index relations (§2.5.1) and their evaluation plumbing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use basilisk_catalog::Catalog;
use basilisk_expr::eval::ColumnProvider;
use basilisk_expr::ColumnRef;
use basilisk_storage::{Column, Table};
use basilisk_types::{BasiliskError, Result, Value};

/// The tables visible to one query: alias → table. Built once per query
/// from the catalog and shared by every operator.
#[derive(Clone)]
pub struct TableSet {
    tables: HashMap<String, Arc<Table>>,
}

impl TableSet {
    pub fn new(catalog: &Catalog, aliases: &[(String, String)]) -> Result<TableSet> {
        let mut tables = HashMap::with_capacity(aliases.len());
        for (alias, name) in aliases {
            if tables.insert(alias.clone(), catalog.table(name)?).is_some() {
                return Err(BasiliskError::Plan(format!("duplicate alias {alias}")));
            }
        }
        Ok(TableSet { tables })
    }

    /// Build directly from (alias, table) pairs — used by tests.
    pub fn from_tables(pairs: Vec<(String, Arc<Table>)>) -> TableSet {
        TableSet {
            tables: pairs.into_iter().collect(),
        }
    }

    pub fn table(&self, alias: &str) -> Result<&Arc<Table>> {
        self.tables
            .get(alias)
            .ok_or_else(|| BasiliskError::Plan(format!("unknown alias {alias}")))
    }

    pub fn num_rows(&self, alias: &str) -> Result<usize> {
        Ok(self.table(alias)?.num_rows())
    }

    /// Fetch the base-table column behind a [`ColumnRef`].
    pub fn column(&self, col: &ColumnRef) -> Result<basilisk_storage::ColumnHandle> {
        Ok(self.table(&col.table)?.column(&col.column)?.clone())
    }
}

/// An intermediate relation of index tuples: `cols[i][j]` is the row in
/// base table `tables[i]` contributed to tuple `j`. Filters on a relation
/// produce a new (smaller) relation; under tagged execution the relation
/// stays fixed and only bitmaps change (see `basilisk-core`).
#[derive(Clone)]
pub struct IdxRelation {
    tables: Vec<String>,
    cols: Vec<Arc<Vec<u32>>>,
    len: usize,
}

impl IdxRelation {
    /// The base relation of a table scan: identity indices `0..n`.
    pub fn base(alias: impl Into<String>, rows: usize) -> IdxRelation {
        IdxRelation {
            tables: vec![alias.into()],
            cols: vec![Arc::new((0..rows as u32).collect())],
            len: rows,
        }
    }

    /// [`Self::base`] with the identity column drawn from the arena's
    /// [`ColumnPool`](basilisk_types::ColumnPool), so repeated executions
    /// of a plan re-fill one pooled buffer instead of allocating a fresh
    /// `0..n` vector per scan.
    pub fn base_in(
        alias: impl Into<String>,
        rows: usize,
        arena: &basilisk_types::MaskArena,
    ) -> IdxRelation {
        let mut ids = arena.columns().checkout(rows);
        ids.extend(0..rows as u32);
        IdxRelation {
            tables: vec![alias.into()],
            cols: vec![Arc::new(ids)],
            len: rows,
        }
    }

    /// Assemble from parts (lengths must agree).
    pub fn from_parts(tables: Vec<String>, cols: Vec<Arc<Vec<u32>>>) -> IdxRelation {
        let len = cols.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        debug_assert_eq!(tables.len(), cols.len());
        IdxRelation { tables, cols, len }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base-table aliases covered, in column order.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    pub fn covers(&self, alias: &str) -> bool {
        self.tables.iter().any(|t| t == alias)
    }

    /// The index column for one covered table.
    pub fn col(&self, alias: &str) -> Result<&Arc<Vec<u32>>> {
        self.tables
            .iter()
            .position(|t| t == alias)
            .map(|i| &self.cols[i])
            .ok_or_else(|| BasiliskError::Exec(format!("relation does not cover alias {alias}")))
    }

    pub fn cols(&self) -> &[Arc<Vec<u32>>] {
        &self.cols
    }

    /// Keep only the tuples at `keep` (positions into this relation).
    /// Columns gather through the word-parallel kernel into fresh
    /// allocations; the hot path uses the pooled [`Self::select_in`].
    pub fn select(&self, keep: &[u32]) -> IdxRelation {
        let cols = self
            .cols
            .iter()
            .map(|c| {
                let mut out = Vec::new();
                basilisk_types::gather_u32_into(c, keep, &mut out);
                Arc::new(out)
            })
            .collect();
        IdxRelation {
            tables: self.tables.clone(),
            cols,
            len: keep.len(),
        }
    }

    /// [`Self::select`] with every output column checked out of the
    /// arena's [`ColumnPool`](basilisk_types::ColumnPool) and filled by
    /// the word-parallel gather kernel — allocation-free once the pool is
    /// warm. The produced columns follow the pool's `Arc`-share →
    /// `try_unwrap` reclaim lifecycle (see [`Self::recycle`]).
    pub fn select_in(&self, keep: &[u32], arena: &basilisk_types::MaskArena) -> IdxRelation {
        let cols = self
            .cols
            .iter()
            .map(|c| {
                let mut out = arena.columns().checkout(keep.len());
                basilisk_types::gather_u32_into(c, keep, &mut out);
                Arc::new(out)
            })
            .collect();
        IdxRelation {
            tables: self.tables.clone(),
            cols,
            len: keep.len(),
        }
    }

    /// Hand this relation's index columns back to the arena's column
    /// pool. Columns still `Arc`-shared with a live relation are left to
    /// that holder (its own recycle — or the result sweep — reclaims
    /// them); sole-owned buffers go straight back to the pool.
    pub fn recycle(self, arena: &basilisk_types::MaskArena) {
        for col in self.cols {
            arena.columns().recycle(col);
        }
    }

    /// Keep only the tuples whose position is set in `keep`, gathering
    /// straight off the bitmap — no intermediate index vector (the
    /// selection-vector idiom; see `Bitmap::iter_ones`).
    pub fn select_bitmap(&self, keep: &basilisk_types::Bitmap) -> IdxRelation {
        assert_eq!(keep.len(), self.len, "selection bitmap length mismatch");
        let n = keep.count_ones();
        let cols = self
            .cols
            .iter()
            .map(|c| {
                let mut v = Vec::with_capacity(n);
                v.extend(keep.iter_ones().map(|i| c[i]));
                Arc::new(v)
            })
            .collect();
        IdxRelation {
            tables: self.tables.clone(),
            cols,
            len: n,
        }
    }

    /// [`Self::select_bitmap`] with pooled scratch: the bitmap is decoded
    /// once into a recycled index buffer (instead of once per column) and
    /// every column gathers through it into pooled output columns.
    pub fn select_bitmap_in(
        &self,
        keep: &basilisk_types::Bitmap,
        arena: &basilisk_types::MaskArena,
    ) -> IdxRelation {
        assert_eq!(keep.len(), self.len, "selection bitmap length mismatch");
        let mut idx = arena.indices();
        keep.indices_into(&mut idx);
        let out = self.select_in(&idx, arena);
        arena.recycle_indices(idx);
        out
    }

    /// The tuple at position `i` (row per covered table) — tests/debug.
    pub fn tuple(&self, i: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[i]).collect()
    }
}

/// A per-column slot: the gathered column once ready, guarded by its own
/// lock so exactly one thread computes while racers wait on the result
/// instead of re-gathering.
type ColumnSlot = Arc<Mutex<Option<Arc<Column>>>>;

/// A small sharded column cache: `ColumnRef → Arc<Column>` behind
/// per-shard locks, so concurrent worker threads taking the sparse
/// [`ColumnProvider::fetch_at`] path contend only when they race on the
/// *same* column. The shard lock covers only the map probe; the actual
/// gather runs under a per-column slot lock, which makes cold starts
/// thundering-herd-free: when a parallel region begins and every worker
/// asks for the same column at once, the first one gathers and the rest
/// block on the slot and share the result (errors are not cached — a
/// loser retries, hitting the same deterministic error).
struct ShardedColumnCache {
    shards: [Mutex<HashMap<ColumnRef, ColumnSlot>>; Self::SHARDS],
}

impl ShardedColumnCache {
    const SHARDS: usize = 8;

    fn new() -> Self {
        ShardedColumnCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, col: &ColumnRef) -> &Mutex<HashMap<ColumnRef, ColumnSlot>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        col.hash(&mut h);
        &self.shards[(h.finish() as usize) % Self::SHARDS]
    }

    /// Return the cached column for `col`, computing it with `gather` if
    /// absent — at most one concurrent computation per column.
    fn get_or_compute(
        &self,
        col: &ColumnRef,
        gather: impl FnOnce() -> Result<Arc<Column>>,
    ) -> Result<Arc<Column>> {
        let slot = Arc::clone(
            self.shard(col)
                .lock()
                .unwrap()
                .entry(col.clone())
                .or_default(),
        );
        let mut slot = slot.lock().unwrap();
        if let Some(c) = &*slot {
            return Ok(Arc::clone(c));
        }
        let c = gather()?;
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }
}

/// [`ColumnProvider`] over an index relation: fetching `t.c` gathers
/// table `t`'s column `c` at the relation's index column for `t`.
/// Gathered columns are cached so each (predicate, column) pair touches
/// the base table once.
///
/// The caches are **sharded and `Sync`**: the morsel-parallel evaluator
/// hands one `&RelProvider` to every worker thread, so sparse
/// selections keep their page-selective `fetch_at` read path under
/// parallelism instead of being forced through a dense whole-column
/// prefetch (the historical `ColumnSet` workaround).
pub struct RelProvider<'a> {
    tables: &'a TableSet,
    relation: &'a IdxRelation,
    cache: ShardedColumnCache,
    /// Selection-aligned columns (see [`ColumnProvider::fetch_at`]): each
    /// provider serves one operator invocation, so one selection applies
    /// to every cached entry.
    sel_cache: ShardedColumnCache,
    /// Aliases whose index column is the identity `0..n` (an unfiltered
    /// base scan) — precomputed so the per-fetch checks are O(1) even
    /// when every morsel of every worker asks.
    identity: HashMap<String, bool>,
}

impl<'a> RelProvider<'a> {
    pub fn new(tables: &'a TableSet, relation: &'a IdxRelation) -> Self {
        let identity = relation
            .tables()
            .iter()
            .map(|alias| {
                let ident = tables
                    .num_rows(alias)
                    .ok()
                    .zip(relation.col(alias).ok())
                    .is_some_and(|(n, rows)| is_identity(rows, n));
                (alias.clone(), ident)
            })
            .collect();
        RelProvider {
            tables,
            relation,
            cache: ShardedColumnCache::new(),
            sel_cache: ShardedColumnCache::new(),
            identity,
        }
    }

    fn is_identity_alias(&self, alias: &str) -> bool {
        self.identity.get(alias).copied().unwrap_or(false)
    }
}

impl ColumnProvider for RelProvider<'_> {
    fn fetch(&self, col: &ColumnRef) -> Result<Arc<Column>> {
        self.cache.get_or_compute(col, || {
            let handle = self.tables.column(col)?;
            let rows = self.relation.col(&col.table)?;
            // Base scans carry identity index columns; share the stored
            // column instead of copying it row by row.
            if self.is_identity_alias(&col.table) {
                handle.scan()
            } else {
                Ok(Arc::new(handle.gather(rows)?))
            }
        })
    }

    /// For sparse selections over copied (non-identity) or disk-backed
    /// columns, gather only the selected rows — page-selective on disk —
    /// and scatter them into a position-aligned column whose unselected
    /// lanes are invalid. This keeps the tagged filter's "fewer I/O calls"
    /// property without materializing a sub-relation.
    fn fetch_at(&self, col: &ColumnRef, sel: &basilisk_types::Bitmap) -> Result<Arc<Column>> {
        // Dense selections — or zero-copy full columns — go through the
        // shared full-column path. Density is re-derived per call (a
        // word-parallel popcount, cheap even once per morsel per atom).
        if 2 * sel.count_ones() >= sel.len() {
            return self.fetch(col);
        }
        let handle = self.tables.column(col)?;
        let zero_copy = matches!(handle, basilisk_storage::ColumnHandle::Mem(_))
            && self.is_identity_alias(&col.table);
        if zero_copy {
            return self.fetch(col);
        }
        self.sel_cache.get_or_compute(col, || {
            let rows = self.relation.col(&col.table)?;
            let subset: Vec<u32> = sel.iter_ones().map(|p| rows[p]).collect();
            let compact = handle.gather(&subset)?;
            Ok(Arc::new(scatter_aligned(&compact, sel)))
        })
    }

    /// Encoded columns are positional, so only identity-aligned aliases
    /// (unfiltered base scans, where relation row `i` *is* table row `i`)
    /// may answer — exactly the scans where zone-map skipping pays.
    fn fetch_encoded(&self, col: &ColumnRef) -> Option<Arc<basilisk_storage::EncodedColumn>> {
        if !self.is_identity_alias(&col.table) {
            return None;
        }
        match self.tables.column(col) {
            Ok(handle) => handle.encoded().cloned(),
            Err(_) => None,
        }
    }

    fn num_rows(&self) -> usize {
        self.relation.len()
    }
}

// The morsel-parallel evaluator shares one `&RelProvider` across worker
// threads; keep the property pinned at compile time.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<RelProvider<'static>>();
};

/// True when `rows` is exactly `0..table_rows` — the index column of an
/// unfiltered base scan.
fn is_identity(rows: &[u32], table_rows: usize) -> bool {
    rows.len() == table_rows && rows.iter().enumerate().all(|(i, &r)| r as usize == i)
}

/// Expand a compacted column (one value per set bit of `sel`, in bit
/// order) to a `sel.len()`-lane column where value `j` sits at the `j`-th
/// set position. Unselected lanes are invalid and default-filled; callers
/// honoring the [`ColumnProvider::fetch_at`] contract never read them.
fn scatter_aligned(compact: &Column, sel: &basilisk_types::Bitmap) -> Column {
    use basilisk_storage::{ColumnData, StrData};
    debug_assert_eq!(compact.len(), sel.count_ones());
    let n = sel.len();
    let mut validity = basilisk_types::Bitmap::new(n);
    for (j, p) in sel.iter_ones().enumerate() {
        if compact.is_valid(j) {
            validity.set(p);
        }
    }
    let data = match compact.data() {
        ColumnData::Int(v) => {
            let mut out = vec![0i64; n];
            for (j, p) in sel.iter_ones().enumerate() {
                out[p] = v[j];
            }
            ColumnData::Int(out)
        }
        ColumnData::Float(v) => {
            let mut out = vec![0.0f64; n];
            for (j, p) in sel.iter_ones().enumerate() {
                out[p] = v[j];
            }
            ColumnData::Float(out)
        }
        ColumnData::Bool(v) => {
            let mut out = vec![false; n];
            for (j, p) in sel.iter_ones().enumerate() {
                out[p] = v[j];
            }
            ColumnData::Bool(out)
        }
        ColumnData::Str(s) => {
            let mut out = StrData::with_capacity(n, s.raw().1.len());
            let mut ones = sel.iter_ones().enumerate().peekable();
            for p in 0..n {
                match ones.peek() {
                    Some(&(j, q)) if q == p => {
                        out.push(s.get(j));
                        ones.next();
                    }
                    _ => out.push(""),
                }
            }
            ColumnData::Str(out)
        }
    };
    Column::new(data, Some(validity)).expect("scatter_aligned builds consistent columns")
}

/// Extract the join key at row `i` of a key column; `None` for NULL (SQL
/// equi-joins never match NULLs).
pub fn join_key(col: &Column, i: usize) -> Option<Value> {
    if !col.is_valid(i) {
        return None;
    }
    Some(col.value(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn table() -> Arc<Table> {
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("name", DataType::Str);
        for (id, name) in [(10, "a"), (20, "b"), (30, "c")] {
            b.push_row(vec![(id as i64).into(), name.into()]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn base_relation_identity() {
        let r = IdxRelation::base("t", 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tables(), &["t".to_string()]);
        assert!(r.covers("t"));
        assert!(!r.covers("u"));
        assert_eq!(**r.col("t").unwrap(), vec![0, 1, 2]);
        assert!(r.col("u").is_err());
        assert_eq!(r.tuple(1), vec![1]);
    }

    #[test]
    fn select_narrows() {
        let r = IdxRelation::base("t", 5).select(&[4, 0]);
        assert_eq!(r.len(), 2);
        assert_eq!(**r.col("t").unwrap(), vec![4, 0]);
        let empty = r.select(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn provider_gathers_and_caches() {
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        let rel = IdxRelation::base("t", 3).select(&[2, 0]);
        let p = RelProvider::new(&ts, &rel);
        let c = p.fetch(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(c.as_ints().unwrap(), &[30, 10]);
        let c2 = p.fetch(&ColumnRef::new("t", "id")).unwrap();
        assert!(Arc::ptr_eq(&c, &c2), "cached");
        assert_eq!(p.num_rows(), 2);
        assert!(p.fetch(&ColumnRef::new("u", "id")).is_err());
    }

    #[test]
    fn fetch_at_sparse_scatters_aligned() {
        use basilisk_types::Bitmap;
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        // Non-identity relation: tuples map to rows 2,0,1,2,0,1,2,0 so the
        // sparse path (selectivity < 1/2) must gather through the index
        // column, not the base table directly.
        let rel = IdxRelation::base("t", 3).select(&[2, 0, 1, 2, 0, 1, 2, 0]);
        let p = RelProvider::new(&ts, &rel);
        let sel = Bitmap::from_indices(8, [1usize, 6, 7]);
        let c = p.fetch_at(&ColumnRef::new("t", "id"), &sel).unwrap();
        assert_eq!(c.len(), 8, "aligned to the relation, not compacted");
        // Selected lanes carry the right values…
        assert_eq!(c.value(1), Value::Int(10)); // row 0
        assert_eq!(c.value(6), Value::Int(30)); // row 2
        assert_eq!(c.value(7), Value::Int(10)); // row 0
                                                // …and unselected lanes are invalid, never silently wrong.
        assert!(!c.is_valid(0));
        assert!(!c.is_valid(5));
        // Strings scatter too.
        let c = p.fetch_at(&ColumnRef::new("t", "name"), &sel).unwrap();
        assert_eq!(c.value(6), Value::from("c"));
        assert!(!c.is_valid(2));
        // Cached: second call returns the same Arc.
        let again = p.fetch_at(&ColumnRef::new("t", "name"), &sel).unwrap();
        assert!(Arc::ptr_eq(&c, &again));
        // Dense selections fall back to the shared full-column path.
        let dense = Bitmap::all_set(8);
        let full = p.fetch_at(&ColumnRef::new("t", "id"), &dense).unwrap();
        assert_eq!(full.len(), 8);
        assert!(full.is_valid(0));
    }

    #[test]
    fn fetch_encoded_only_for_identity_relations() {
        let mut b = TableBuilder::new("t").column("id", DataType::Int).encoded();
        for id in 0..5i64 {
            b.push_row(vec![id.into()]).unwrap();
        }
        let t = Arc::new(b.finish().unwrap());
        let ts = TableSet::from_tables(vec![("t".into(), t)]);
        let base = IdxRelation::base("t", 5);
        let p = RelProvider::new(&ts, &base);
        let enc = p.fetch_encoded(&ColumnRef::new("t", "id")).unwrap();
        assert_eq!(enc.len(), 5);
        // Filtered relations are not positionally aligned — no encoded view.
        let narrowed = base.select(&[3, 1]);
        let p = RelProvider::new(&ts, &narrowed);
        assert!(p.fetch_encoded(&ColumnRef::new("t", "id")).is_none());
        // Plain (unencoded) tables have nothing to offer either.
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        let base = IdxRelation::base("t", 3);
        let p = RelProvider::new(&ts, &base);
        assert!(p.fetch_encoded(&ColumnRef::new("t", "id")).is_none());
    }

    #[test]
    fn join_key_null_handling() {
        use basilisk_storage::ColumnBuilder;
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Value::Int(5)).unwrap();
        b.push(Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(join_key(&c, 0), Some(Value::Int(5)));
        assert_eq!(join_key(&c, 1), None);
    }

    #[test]
    fn tableset_lookup() {
        let ts = TableSet::from_tables(vec![("t".into(), table())]);
        assert_eq!(ts.num_rows("t").unwrap(), 3);
        assert!(ts.table("x").is_err());
        assert!(ts.column(&ColumnRef::new("t", "id")).is_ok());
        assert!(ts.column(&ColumnRef::new("t", "zz")).is_err());
    }
}
