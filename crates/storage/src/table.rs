//! Tables: named collections of equal-length columns, in-memory or
//! disk-backed, with the selectivity-threshold read policy from §5.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use basilisk_types::{BasiliskError, Bitmap, DataType, Result, Value};

use crate::cache::LfuPageCache;
use crate::column::{Column, ColumnBuilder};
use crate::disk::DiskColumn;
use crate::encode::EncodedColumn;

/// Above this fraction of set bits, a bitmap read scans the whole column
/// sequentially and selects in memory; below it, only the relevant pages
/// are read (§5: "for all bitmaps with a selectivity above a certain
/// threshold, Basilisk instead reads the entire column sequentially").
/// The paper does not publish its threshold; 0.05 is a conventional pick
/// for ~1000-value pages where even 5% selectivity touches most pages.
pub const DEFAULT_SEQ_SCAN_THRESHOLD: f64 = 0.05;

/// A handle to one column's storage: resident, resident-encoded, or on
/// disk. Everything above this API is encoding-blind — an `Enc` handle
/// answers every method with the exact rows a `Mem` handle would.
#[derive(Clone)]
pub enum ColumnHandle {
    Mem(Arc<Column>),
    /// Compressed + zone-mapped (see [`EncodedColumn`]). Evaluators that
    /// know about encodings fetch the inner column and run code-space
    /// kernels; everyone else decodes through [`ColumnHandle::scan`].
    Enc(Arc<EncodedColumn>),
    Disk(Arc<DiskColumn>),
}

impl ColumnHandle {
    pub fn len(&self) -> usize {
        match self {
            ColumnHandle::Mem(c) => c.len(),
            ColumnHandle::Enc(e) => e.len(),
            ColumnHandle::Disk(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnHandle::Mem(c) => c.data_type(),
            ColumnHandle::Enc(e) => e.data_type(),
            ColumnHandle::Disk(d) => d.data_type(),
        }
    }

    /// The encoded form, when this column has one.
    pub fn encoded(&self) -> Option<&Arc<EncodedColumn>> {
        match self {
            ColumnHandle::Enc(e) => Some(e),
            _ => None,
        }
    }

    /// Read the entire column.
    pub fn scan(&self) -> Result<Arc<Column>> {
        match self {
            ColumnHandle::Mem(c) => Ok(Arc::clone(c)),
            ColumnHandle::Enc(e) => Ok(Arc::new(e.decode())),
            ColumnHandle::Disk(d) => Ok(Arc::new(d.scan()?)),
        }
    }

    /// Materialize the values at `rows` (row ids into the base table, may
    /// repeat and be unsorted — this is how joins fetch key columns).
    pub fn gather(&self, rows: &[u32]) -> Result<Column> {
        match self {
            ColumnHandle::Mem(c) => Ok(c.gather(rows)),
            ColumnHandle::Enc(e) => Ok(e.gather(rows)),
            ColumnHandle::Disk(d) => d.gather(rows),
        }
    }

    /// [`Self::gather`] into pooled value buffers (see
    /// [`Column::gather_in`]). Disk columns gather through the page reads
    /// first and then re-land in pooled buffers (an extra in-memory copy
    /// the page I/O dwarfs) — so the returned column is *always* backed
    /// by checked-out pool buffers and [`Column::recycle`] keeps every
    /// arena's `outstanding()` accounting exact.
    pub fn gather_in(&self, rows: &[u32], arena: &basilisk_types::MaskArena) -> Result<Column> {
        match self {
            ColumnHandle::Mem(c) => Ok(c.gather_in(rows, arena)),
            ColumnHandle::Enc(e) => {
                // Like the disk path: decode the gathered subset fresh,
                // then re-land it in pooled buffers.
                let fresh = e.gather(rows);
                let mut identity = arena.indices();
                identity.extend(0..fresh.len() as u32);
                let pooled = fresh.gather_in(&identity, arena);
                arena.recycle_indices(identity);
                Ok(pooled)
            }
            ColumnHandle::Disk(d) => {
                let fresh = d.gather(rows)?;
                let mut identity = arena.indices();
                identity.extend(0..fresh.len() as u32);
                let pooled = fresh.gather_in(&identity, arena);
                arena.recycle_indices(identity);
                Ok(pooled)
            }
        }
    }

    /// Read the values selected by `bitmap`, in ascending row order,
    /// applying the sequential-vs-random policy for disk columns.
    pub fn read_selected(&self, bitmap: &Bitmap, threshold: f64) -> Result<Column> {
        let mut scratch = Vec::new();
        self.read_selected_with(bitmap, threshold, &mut scratch)
    }

    /// [`Self::read_selected`] with a caller-supplied index scratch buffer
    /// (`Bitmap::indices_into`), so per-column loops decode into one
    /// reused allocation instead of a fresh `Vec` per column.
    pub fn read_selected_with(
        &self,
        bitmap: &Bitmap,
        threshold: f64,
        scratch: &mut Vec<u32>,
    ) -> Result<Column> {
        match self {
            ColumnHandle::Mem(c) => {
                bitmap.indices_into(scratch);
                Ok(c.gather(scratch))
            }
            ColumnHandle::Enc(e) => {
                bitmap.indices_into(scratch);
                Ok(e.gather(scratch))
            }
            ColumnHandle::Disk(d) => {
                if bitmap.selectivity() > threshold {
                    let full = d.scan()?;
                    bitmap.indices_into(scratch);
                    Ok(full.gather(scratch))
                } else {
                    d.read_selected(bitmap)
                }
            }
        }
    }
}

/// A named table.
#[derive(Clone)]
pub struct Table {
    name: String,
    columns: Vec<(String, ColumnHandle)>,
    by_name: HashMap<String, usize>,
    rows: usize,
}

impl Table {
    /// Build an in-memory table from columns (all must share a length).
    pub fn from_columns(name: impl Into<String>, columns: Vec<(String, Column)>) -> Result<Table> {
        let name = name.into();
        let rows = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut by_name = HashMap::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        for (i, (cname, col)) in columns.into_iter().enumerate() {
            if col.len() != rows {
                return Err(BasiliskError::Schema(format!(
                    "column {cname} has {} rows, table {name} has {rows}",
                    col.len()
                )));
            }
            if by_name.insert(cname.clone(), i).is_some() {
                return Err(BasiliskError::Schema(format!(
                    "duplicate column {cname} in table {name}"
                )));
            }
            cols.push((cname, ColumnHandle::Mem(Arc::new(col))));
        }
        Ok(Table {
            name,
            columns: cols,
            by_name,
            rows,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, name: &str) -> Result<&ColumnHandle> {
        self.by_name
            .get(name)
            .map(|&i| &self.columns[i].1)
            .ok_or_else(|| {
                BasiliskError::Schema(format!("no column {name} in table {}", self.name))
            })
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    pub fn columns(&self) -> impl Iterator<Item = (&str, &ColumnHandle)> {
        self.columns.iter().map(|(n, h)| (n.as_str(), h))
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Persist the table to `dir` (one `.col` file per column plus a
    /// `schema.txt` manifest). Requires all columns to be in memory.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut manifest = String::new();
        manifest.push_str(&format!("table {}\n", self.name));
        for (cname, handle) in &self.columns {
            let col = handle.scan()?;
            DiskColumn::write(&dir.join(format!("{cname}.col")), &col)?;
            manifest.push_str(&format!("column {} {}\n", cname, col.data_type().name()));
        }
        std::fs::write(dir.join("schema.txt"), manifest)?;
        Ok(())
    }

    /// Open a table previously written by [`Table::save`], reading data
    /// pages through `cache`.
    pub fn load(dir: &Path, cache: Arc<LfuPageCache>) -> Result<Table> {
        let manifest = std::fs::read_to_string(dir.join("schema.txt"))?;
        let mut name = None;
        let mut columns = Vec::new();
        let mut by_name = HashMap::new();
        for line in manifest.lines() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("table") => name = parts.next().map(str::to_owned),
                Some("column") => {
                    let cname = parts
                        .next()
                        .ok_or_else(|| {
                            BasiliskError::Corrupt("manifest missing column name".into())
                        })?
                        .to_owned();
                    let disk =
                        DiskColumn::open(&dir.join(format!("{cname}.col")), Arc::clone(&cache))?;
                    by_name.insert(cname.clone(), columns.len());
                    columns.push((cname, ColumnHandle::Disk(Arc::new(disk))));
                }
                _ => {}
            }
        }
        let name =
            name.ok_or_else(|| BasiliskError::Corrupt("manifest missing table name".into()))?;
        let rows = columns.first().map(|(_, h)| h.len()).unwrap_or(0);
        if columns.iter().any(|(_, h)| h.len() != rows) {
            return Err(BasiliskError::Corrupt(format!(
                "column lengths disagree in table {name}"
            )));
        }
        Ok(Table {
            name,
            columns,
            by_name,
            rows,
        })
    }

    /// The same table with every column re-encoded (dictionary /
    /// frame-of-reference, see [`EncodedColumn`]). Reads above the
    /// storage API are unchanged; encoding-aware evaluators gain zone
    /// maps and code-space kernels.
    pub fn encode(&self) -> Result<Table> {
        let mut columns = Vec::with_capacity(self.columns.len());
        for (cname, handle) in &self.columns {
            let col = handle.scan()?;
            columns.push((
                cname.clone(),
                ColumnHandle::Enc(Arc::new(EncodedColumn::encode(&col))),
            ));
        }
        Ok(Table {
            name: self.name.clone(),
            columns,
            by_name: self.by_name.clone(),
            rows: self.rows,
        })
    }
}

/// Row-at-a-time builder for in-memory tables (used by loaders, generators
/// and tests).
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, ColumnBuilder)>,
    encode: bool,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            encode: false,
        }
    }

    pub fn column(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.columns.push((name.into(), ColumnBuilder::new(dtype)));
        self
    }

    /// Finish into encoded columns ([`ColumnHandle::Enc`]) instead of
    /// plain in-memory ones. Invisible above the storage API.
    pub fn encoded(mut self) -> Self {
        self.encode = true;
        self
    }

    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(BasiliskError::Schema(format!(
                "row has {} values, table {} has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for ((_, b), v) in self.columns.iter_mut().zip(row) {
            b.push(v)?;
        }
        Ok(())
    }

    pub fn finish(self) -> Result<Table> {
        let table = Table::from_columns(
            self.name,
            self.columns
                .into_iter()
                .map(|(n, b)| (n, b.finish()))
                .collect(),
        )?;
        if self.encode {
            table.encode()
        } else {
            Ok(table)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new("movies")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("title", DataType::Str);
        for (id, year, title) in [
            (1, 2008, "The Dark Knight"),
            (2, 2001, "Evolution"),
            (3, 1994, "The Shawshank Redemption"),
            (4, 1994, "Pulp Fiction"),
        ] {
            b.push_row(vec![id.into(), year.into(), title.into()])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_and_access() {
        let t = sample_table();
        assert_eq!(t.name(), "movies");
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert!(t.has_column("year"));
        assert!(!t.has_column("score"));
        let years = t.column("year").unwrap().scan().unwrap();
        assert_eq!(years.as_ints().unwrap(), &[2008, 2001, 1994, 1994]);
        assert!(t.column("nope").is_err());
        assert_eq!(t.column_names(), vec!["id", "year", "title"]);
    }

    #[test]
    fn builder_rejects_ragged_rows() {
        let mut b = TableBuilder::new("t").column("a", DataType::Int);
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn from_columns_rejects_mismatched_lengths_and_dupes() {
        let r = Table::from_columns(
            "t",
            vec![
                ("a".into(), Column::from_ints(vec![1, 2])),
                ("b".into(), Column::from_ints(vec![1])),
            ],
        );
        assert!(r.is_err());
        let r = Table::from_columns(
            "t",
            vec![
                ("a".into(), Column::from_ints(vec![1])),
                ("a".into(), Column::from_ints(vec![2])),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("basilisk-table-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        t.save(&dir).unwrap();
        let cache = Arc::new(LfuPageCache::new(16));
        let loaded = Table::load(&dir, cache).unwrap();
        assert_eq!(loaded.name(), "movies");
        assert_eq!(loaded.num_rows(), 4);
        let titles = loaded.column("title").unwrap().scan().unwrap();
        assert_eq!(titles.value(3), Value::from("Pulp Fiction"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_selected_policies_agree() {
        // Build a large-ish disk table; verify the sparse (page) path and
        // the dense (sequential) path return identical data.
        let n = 4096i64;
        let col = Column::from_ints((0..n).collect());
        let t = Table::from_columns("t", vec![("a".into(), col)]).unwrap();
        let dir = std::env::temp_dir().join(format!("basilisk-selpol-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        t.save(&dir).unwrap();
        let cache = Arc::new(LfuPageCache::new(64));
        let loaded = Table::load(&dir, cache).unwrap();
        let h = loaded.column("a").unwrap();

        let sparse = Bitmap::from_indices(n as usize, [3usize, 2000, 4000]);
        let dense = Bitmap::from_indices(n as usize, (0..3000).step_by(2));

        let a = h
            .read_selected(&sparse, DEFAULT_SEQ_SCAN_THRESHOLD)
            .unwrap();
        let b = h.read_selected(&sparse, 1.1).unwrap(); // force page path
        assert_eq!(a, b);
        assert_eq!(a.as_ints().unwrap(), &[3, 2000, 4000]);

        let a = h.read_selected(&dense, DEFAULT_SEQ_SCAN_THRESHOLD).unwrap();
        let b = h.read_selected(&dense, 1.1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1500);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encoded_table_is_transparent() {
        let plain = sample_table();
        let mut b = TableBuilder::new("movies")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("title", DataType::Str)
            .encoded();
        for (id, year, title) in [
            (1, 2008, "The Dark Knight"),
            (2, 2001, "Evolution"),
            (3, 1994, "The Shawshank Redemption"),
            (4, 1994, "Pulp Fiction"),
        ] {
            b.push_row(vec![id.into(), year.into(), title.into()])
                .unwrap();
        }
        let mut enc = b.finish().unwrap();
        for (name, handle) in enc.columns() {
            assert!(handle.encoded().is_some(), "column {name} is encoded");
            let p = plain.column(name).unwrap();
            assert_eq!(*handle.scan().unwrap(), *p.scan().unwrap());
            assert_eq!(
                handle.gather(&[3, 1, 1]).unwrap(),
                p.gather(&[3, 1, 1]).unwrap()
            );
            let sel = Bitmap::from_indices(4, [0usize, 2]);
            assert_eq!(
                handle
                    .read_selected(&sel, DEFAULT_SEQ_SCAN_THRESHOLD)
                    .unwrap(),
                p.read_selected(&sel, DEFAULT_SEQ_SCAN_THRESHOLD).unwrap()
            );
        }
        // Re-encoding an already materialized table works too.
        enc = plain.encode().unwrap();
        assert!(enc.column("year").unwrap().encoded().is_some());
        assert_eq!(
            *enc.column("year").unwrap().scan().unwrap(),
            *plain.column("year").unwrap().scan().unwrap()
        );
    }

    #[test]
    fn mem_handle_ops() {
        let t = sample_table();
        let h = t.column("id").unwrap();
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.data_type(), DataType::Int);
        let g = h.gather(&[3, 0]).unwrap();
        assert_eq!(g.as_ints().unwrap(), &[4, 1]);
        let sel = Bitmap::from_indices(4, [1usize, 2]);
        let s = h.read_selected(&sel, DEFAULT_SEQ_SCAN_THRESHOLD).unwrap();
        assert_eq!(s.as_ints().unwrap(), &[2, 3]);
    }
}
