//! Chunked `u32` gather kernels.
//!
//! The index-column gathers in `combine` / `select` are the classic
//! MonetDB/X100-style positional gather: `out[j] = src[idx[j]]`. The
//! `simd`-gated kernel processes indices in 8-lane (`u32x8`) chunks as
//! hardware AVX2 `vpgatherdd` gathers, validated by a SIMD max-reduction
//! over the index vector before any unchecked read.
//!
//! The one-at-a-time loop is kept as [`gather_u32_scalar_into`] — it is
//! the reference implementation the property tests compare against, the
//! baseline the `gather_kernel_speedup` bench ratio is measured from,
//! and the dispatch target when `simd` is off. A manually 8-lane
//! *unrolled scalar* variant was benchmarked and rejected: on baseline
//! x86-64 codegen LLVM's fused `extend(iter().map(..))` loop (TrustedLen
//! specialization, auto-unrolled) beats hand-chunked scalar loads by
//! 20–40%, and the pre-validation max-reduction the unchecked variant
//! needs does not vectorize below SSE4.1 — so the chunked shape only
//! pays off when the hardware gathers for real.
//!
//! Both entry points share the contract: every `idx[j] < src.len()`
//! (panics otherwise) and `out` is cleared and overwritten.

/// Reference gather: one element at a time, bounds-checked.
///
/// Panics when an index is out of range.
pub fn gather_u32_scalar_into(src: &[u32], idx: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(idx.len());
    out.extend(idx.iter().map(|&i| src[i as usize]));
}

/// Positional gather: `out[j] = src[idx[j]]` for every `j`. With the
/// `simd` feature on an AVX2-capable x86-64 host this runs as 8-lane
/// hardware `u32x8` gathers; otherwise it falls back to the scalar
/// reference loop (see the module docs for why that *is* the fastest
/// portable shape).
///
/// Panics when an index is out of range.
pub fn gather_u32_into(src: &[u32], idx: &[u32], out: &mut Vec<u32>) {
    // `vpgatherdd` sign-extends its index lanes, so an index >= 2^31
    // would address *backwards* from the base pointer even though it
    // passes the unsigned max-validation. Columns that large (> 2^31
    // rows) take the scalar path, whose indexing is unsigned.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if src.len() <= i32::MAX as usize && std::arch::is_x86_feature_detected!("avx2") {
        out.clear();
        out.reserve(idx.len());
        // SAFETY: AVX2 support was just verified at runtime, and every
        // valid index fits in i32.
        unsafe { simd::gather_avx2(src, idx, out) };
        return;
    }
    gather_u32_scalar_into(src, idx, out);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Hardware `u32x8` gather (`vpgatherdd`).
    ///
    /// The gather instruction itself performs no bounds checking, so the
    /// kernel first max-reduces the whole index vector (also 8 lanes per
    /// step) and asserts the maximum is in range — after that every lane
    /// read is provably inside `src`.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available on the running CPU and that
    /// `src.len() <= i32::MAX` (the instruction sign-extends index
    /// lanes, so larger in-range indices would address before `src`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_avx2(src: &[u32], idx: &[u32], out: &mut Vec<u32>) {
        // Pass 1: validate. SIMD max over full chunks, scalar tail.
        let mut chunks = idx.chunks_exact(8);
        let mut vmax = _mm256_setzero_si256();
        for c in &mut chunks {
            // SAFETY: `c` is a full 8-lane chunk of `idx`, so 32 bytes
            // starting at `c.as_ptr()` are in bounds; `loadu` needs no
            // alignment.
            let v = unsafe { _mm256_loadu_si256(c.as_ptr() as *const __m256i) };
            vmax = _mm256_max_epu32(vmax, v);
        }
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 8 × u32 = 32 writable bytes; `storeu`
        // needs no alignment.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vmax) };
        let mut max = lanes.into_iter().max().unwrap_or(0);
        for &i in chunks.remainder() {
            max = max.max(i);
        }
        assert!(
            idx.is_empty() || (max as usize) < src.len(),
            "gather index {max} out of range {}",
            src.len()
        );

        // Pass 2: gather straight into `out`'s spare capacity.
        debug_assert!(out.capacity() - out.len() >= idx.len());
        let base = src.as_ptr() as *const i32;
        // SAFETY: the caller reserved `idx.len()` elements of spare
        // capacity (debug-asserted above), so `out.len() + idx.len()`
        // stays within one allocation and `dst` points at its start.
        let dst = unsafe { out.as_mut_ptr().add(out.len()) };
        let mut chunks = idx.chunks_exact(8);
        let mut j = 0;
        for c in &mut chunks {
            // SAFETY: `c` is a full 8-lane chunk of `idx` (32 readable
            // bytes, unaligned load). The gather reads `base + lane * 4`
            // for each lane: pass 1 proved every index < src.len() and
            // the caller guarantees src.len() <= i32::MAX, so each lane
            // is a non-negative in-bounds offset into `src`. The store
            // writes 32 bytes at `dst + j`, inside the reserved spare
            // capacity since j + 8 <= idx.len().
            unsafe {
                let iv = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                let g = _mm256_i32gather_epi32::<4>(base, iv);
                _mm256_storeu_si256(dst.add(j) as *mut __m256i, g);
            }
            j += 8;
        }
        for &i in chunks.remainder() {
            // SAFETY: the tail writes stay below idx.len() elements past
            // `dst`, still inside the reserved spare capacity; `src[i]`
            // is bounds-checked.
            unsafe { *dst.add(j) = src[i as usize] };
            j += 1;
        }
        // SAFETY: exactly `idx.len()` elements past the old length were
        // initialized above, and capacity covers them.
        unsafe { out.set_len(out.len() + idx.len()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the tests need no RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn check(src: &[u32], idx: &[u32]) {
        let mut reference = Vec::new();
        gather_u32_scalar_into(src, idx, &mut reference);
        let mut fast = vec![99; 3]; // pre-filled: kernels must clear
        gather_u32_into(src, idx, &mut fast);
        assert_eq!(fast, reference);
    }

    #[test]
    fn matches_scalar_on_randomized_inputs() {
        let mut state = 0x2545_f491_4f6c_dd1d;
        for &n in &[0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let src: Vec<u32> = (0..997).map(|_| xorshift(&mut state) as u32).collect();
            let idx: Vec<u32> = (0..n)
                .map(|_| (xorshift(&mut state) % 997) as u32)
                .collect();
            check(&src, &idx);
        }
    }

    #[test]
    fn identity_and_repeats() {
        let src: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let idx: Vec<u32> = (0..100).collect();
        check(&src, &idx);
        let idx = vec![5u32; 37];
        check(&src, &idx);
        let idx: Vec<u32> = (0..100).rev().collect();
        check(&src, &idx);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let src = vec![1u32, 2, 3];
        let idx = vec![0u32, 1, 2, 3, 0, 0, 0, 0, 0];
        let mut out = Vec::new();
        gather_u32_into(&src, &idx, &mut out);
    }

    #[test]
    fn empty_src_with_empty_idx() {
        check(&[], &[]);
    }
}
