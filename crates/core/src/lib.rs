//! The tagged execution model (§2–§3) — the paper's primary contribution.
//!
//! In tagged execution, operators work on **tagged relations**: an
//! immutable index relation plus a set of mutually exclusive *relational
//! slices*, each annotated with a [`Tag`] — a set of truth assignments to
//! predicate-tree nodes. Filters and joins are driven by **tag maps** built
//! at plan time, which tell the engine exactly which slices to touch and
//! what to label the results, eliminating the redundant work traditional
//! engines do on disjunctive queries.
//!
//! Module map:
//!
//! * `tag` — tags and their rendering.
//! * `generalize` — **tag generalization** (Algorithm 1): upward
//!   propagation over the predicate tree with duplicate-instance handling
//!   and the three-valued extension of §3.4; optionally enriched by the
//!   atom implication closure of `basilisk-expr`.
//! * `relation` — tagged relations as bitmap-sliced index relations
//!   (§2.5.1).
//! * `tagmap` — tag-map construction (§3.3: Precepts 1 and 2) plus the
//!   naive strategy of §3.1 kept for ablation.
//! * `ops` — the tagged filter (§2.2/§2.5.2), the shared-hash-table
//!   tagged join (§2.3/§2.5.3) and the tag-filtered projection (§2.4);
//!   every operator draws its mask/bitmap scratch from the caller's
//!   [`basilisk_types::MaskArena`] and recycles it before returning, so
//!   steady-state pipelines are allocation-free.

#![forbid(unsafe_code)]

mod generalize;
mod ops;
mod relation;
mod tag;
mod tagmap;

pub use generalize::{generalize_tag, generalize_tag_closed, root_truth};
pub use ops::{
    filter_atom_profiles, tagged_filter, tagged_filter_par, tagged_join, tagged_join_par,
    tagged_project, tagged_select_final,
};
pub use relation::TaggedRelation;
pub use tag::Tag;
pub use tagmap::{
    FilterTagEntry, FilterTagMap, JoinTagEntry, JoinTagMap, ProjectionTags, TagMapBuilder,
    TagMapStrategy,
};
