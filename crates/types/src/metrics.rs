//! Pull-model metrics registry with Prometheus text exposition.
//!
//! Components that own counters (the serving stats recorder, the worker
//! pool, arenas) register a *collector* closure; [`MetricsRegistry::render`]
//! runs every collector against a [`MetricSink`] and returns the
//! Prometheus text-format page (`text/plain; version=0.0.4`) the
//! `/v1/metrics` route serves. Nothing is recorded through the registry
//! itself — the sources keep their existing lock-free counters and are
//! only *read* at scrape time, so the request path pays nothing for
//! exposition.
//!
//! Metric names are a contract (see ROADMAP "Observability"): renames
//! break dashboards the same way wire-field renames break clients.

use std::collections::HashSet;

use crate::histogram::HistogramSnapshot;
use crate::sync::Mutex;

type Collector = Box<dyn Fn(&mut MetricSink) + Send + Sync>;

/// A set of metric collectors rendered on demand (see the module docs).
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Collector>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a collector; it runs on every [`MetricsRegistry::render`].
    pub fn register(&self, collector: impl Fn(&mut MetricSink) + Send + Sync + 'static) {
        self.collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(collector));
    }

    /// Run every collector and return the Prometheus text page.
    pub fn render(&self) -> String {
        let mut sink = MetricSink::new();
        for c in self
            .collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            c(&mut sink);
        }
        sink.finish()
    }
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Accumulates exposition lines for one render pass. `# HELP`/`# TYPE`
/// headers are emitted once per metric family, on its first sample.
pub struct MetricSink {
    out: String,
    seen: HashSet<String>,
}

impl MetricSink {
    fn new() -> MetricSink {
        MetricSink {
            out: String::new(),
            seen: HashSet::new(),
        }
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            self.out.push_str(&format!("# HELP {name} {help}\n"));
            self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    }

    /// One sample of a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// One sample of a point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "gauge");
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// A full power-of-two histogram family: cumulative `_bucket` lines
    /// with `le` in microseconds, then `_sum` (microseconds) and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in snapshot.buckets.iter().enumerate() {
            cumulative += c;
            let le = 1u64 << (i + 1);
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        self.out
            .push_str(&format!("{name}_sum {}\n", snapshot.total_micros));
        self.out.push_str(&format!("{name}_count {cumulative}\n"));
    }

    fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn counters_gauges_and_headers_dedup() {
        let reg = MetricsRegistry::new();
        reg.register(|sink| {
            sink.counter("demo_total", "A demo counter.", &[("lane", "a")], 3);
            sink.counter("demo_total", "A demo counter.", &[("lane", "b")], 5);
            sink.gauge("demo_depth", "A demo gauge.", &[], 2);
        });
        let page = reg.render();
        assert_eq!(page.matches("# HELP demo_total").count(), 1);
        assert_eq!(page.matches("# TYPE demo_total counter").count(), 1);
        assert!(page.contains("demo_total{lane=\"a\"} 3\n"));
        assert!(page.contains("demo_total{lane=\"b\"} 5\n"));
        assert!(page.contains("# TYPE demo_depth gauge\n"));
        assert!(page.contains("demo_depth 2\n"));
    }

    #[test]
    fn multiple_collectors_concatenate() {
        let reg = MetricsRegistry::new();
        reg.register(|s| s.counter("a_total", "a", &[], 1));
        reg.register(|s| s.counter("b_total", "b", &[], 2));
        let page = reg.render();
        let a = page.find("a_total 1").unwrap();
        let b = page.find("b_total 2").unwrap();
        assert!(a < b, "collectors render in registration order");
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let h = Histogram::default();
        h.record_micros(1); // bucket 0
        h.record_micros(3); // bucket 1
        h.record_micros(3);
        let reg = MetricsRegistry::new();
        let snap = h.snapshot();
        reg.register(move |s| s.histogram("lat_micros", "latency", &snap));
        let page = reg.render();
        assert!(page.contains("lat_micros_bucket{le=\"2\"} 1\n"));
        assert!(page.contains("lat_micros_bucket{le=\"4\"} 3\n"));
        assert!(page.contains("lat_micros_bucket{le=\"+Inf\"} 3\n"));
        assert!(page.contains("lat_micros_sum 7\n"));
        assert!(page.contains("lat_micros_count 3\n"));
    }

    #[test]
    fn label_values_escape() {
        let reg = MetricsRegistry::new();
        reg.register(|s| {
            s.counter("esc_total", "e", &[("client", "a\"b\\c\nd")], 1);
        });
        let page = reg.render();
        assert!(page.contains("esc_total{client=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn every_sample_line_is_well_formed() {
        // The shape net-smoke validates: every non-comment line is
        // `name[{labels}] value` with a parseable number.
        let h = Histogram::default();
        h.record_micros(100);
        let snap = h.snapshot();
        let reg = MetricsRegistry::new();
        reg.register(move |s| {
            s.counter("x_total", "x", &[("k", "v")], 1);
            s.gauge("x_depth", "x", &[], 0);
            s.histogram("x_micros", "x", &snap);
        });
        for line in reg.render().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name_part.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }
}
