//! Error-path leak tests for the buffer pools (ISSUE-3 satellite).
//!
//! Every operator checks buffers out of the `MaskArena` / `ColumnPool`
//! and must hand them back even when evaluation fails partway — a failed
//! execution that strands checked-out buffers would silently shrink the
//! pool and erode the allocation-free steady state one error at a time.
//! `MaskArena::outstanding()` counts checkouts not yet returned (masks,
//! bitmaps, index scratch **and** pooled columns), so "no leak" is simply
//! `outstanding() == 0` after the error unwinds.
//!
//! The injected failure is an atom over a column that does not exist:
//! the predicate tree builds fine, the first atom of the connective
//! evaluates (checking buffers out), and the second atom's column fetch
//! fails mid-fold.

use std::sync::Arc;

use basilisk_core::{tagged_filter, tagged_join, TagMapBuilder, TagMapStrategy, TaggedRelation};
use basilisk_exec::{filter as plain_filter, union_all_dedup, IdxRelation, TableSet};
use basilisk_expr::{and, col, or, ColumnRef, PredicateTree};
use basilisk_storage::{Table, TableBuilder};
use basilisk_types::{DataType, MaskArena};

fn title() -> Arc<Table> {
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..100i64 {
        b.push_row(vec![i.into(), (1900 + i % 120).into()]).unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn tset() -> TableSet {
    TableSet::from_tables(vec![("t".into(), title())])
}

/// A predicate whose second AND-child references a missing column, so
/// evaluation fails *after* the first child produced a pooled mask.
/// The first child must stay **mixed** over the test data (years
/// 1900–1999, so `> 1950` is true for some lanes and false for
/// others): the connective folds short-circuit a saturated morsel —
/// an all-false first conjunct would skip the broken atom entirely
/// and the evaluation would (correctly) succeed.
fn failing_tree() -> PredicateTree {
    PredicateTree::build(&or(vec![
        and(vec![
            col("t", "year").gt(1950i64),
            col("t", "no_such_column").gt(0i64),
        ]),
        col("t", "year").lt(1950i64),
    ]))
}

#[test]
fn failed_plain_filter_leaks_nothing() {
    let ts = tset();
    let tree = failing_tree();
    let arena = MaskArena::new();
    let rel = IdxRelation::base_in("t", 100, &arena);
    let err = plain_filter(&ts, &rel, &tree, tree.root(), &arena);
    assert!(err.is_err(), "missing column must fail evaluation");
    rel.recycle(&arena);
    assert_eq!(
        arena.outstanding(),
        0,
        "mid-fold failure stranded pooled buffers"
    );
    // The pool still serves the repaired query afterwards.
    let ok_tree = PredicateTree::build(&col("t", "year").gt(2000i64));
    let rel = IdxRelation::base_in("t", 100, &arena);
    assert!(plain_filter(&ts, &rel, &ok_tree, ok_tree.root(), &arena).is_ok());
}

#[test]
fn failed_tagged_filter_leaks_nothing() {
    let ts = tset();
    let tree = failing_tree();
    let arena = MaskArena::new();
    let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
    // Filter on the whole (failing) conjunction's first atom sibling: use
    // the root so the fold reaches the broken atom.
    let map = builder.filter_map(tree.root(), &[basilisk_core::Tag::empty()]);
    let input = TaggedRelation::base_in(IdxRelation::base_in("t", 100, &arena), &arena);
    let before_cols = arena.stats().columns;
    let err = tagged_filter(&ts, &input, &tree, &map, &arena);
    assert!(err.is_err());
    input.recycle(&arena);
    assert_eq!(
        arena.outstanding(),
        0,
        "failed tagged filter stranded pooled buffers"
    );
    // No column buffer was lost either: the relation's identity column
    // went back to the pool despite the error.
    assert_eq!(arena.stats().columns.fresh, before_cols.fresh);
}

#[test]
fn failed_tagged_join_leaks_nothing() {
    let ts = tset();
    let tree = PredicateTree::build(&col("t", "year").gt(2000i64));
    let arena = MaskArena::new();
    let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
    let left = TaggedRelation::base_in(IdxRelation::base_in("t", 100, &arena), &arena);
    // Second relation over the same table set (alias "t" again is fine —
    // the join key is what is broken).
    let right = TaggedRelation::base_in(IdxRelation::base_in("t", 100, &arena), &arena);
    let jm = builder.join_map(
        &[basilisk_core::Tag::empty()],
        &[basilisk_core::Tag::empty()],
    );
    // Key column covered by the relation but absent from the schema:
    // the key gather fails *after* the position buffers are checked out.
    let err = tagged_join(
        &ts,
        &left,
        &right,
        &ColumnRef::new("t", "no_such_column"),
        &ColumnRef::new("t", "id"),
        &jm,
        &arena,
    );
    assert!(err.is_err());
    left.recycle(&arena);
    right.recycle(&arena);
    assert_eq!(
        arena.outstanding(),
        0,
        "failed tagged join stranded pooled buffers"
    );
}

#[test]
fn failed_union_leaks_no_pooled_columns() {
    let arena = MaskArena::new();
    // Inputs over different table sets → union fails after the output
    // columns and dedup scratch were checked out.
    let a = IdxRelation::base_in("t", 10, &arena);
    let b = IdxRelation::base_in("u", 10, &arena);
    assert!(union_all_dedup(&[a.clone(), b.clone()], &arena).is_err());
    a.recycle(&arena);
    b.recycle(&arena);
    assert_eq!(
        arena.outstanding(),
        0,
        "failed union stranded pooled buffers (MaskArena or ColumnPool)"
    );
}
