//! Workload-level differential suite for morsel-parallel execution: the
//! paper's synthetic §5.2 queries (DNF and CNF families) and a spread of
//! the 33 JOB-style disjunctive groups, executed with workers ∈
//! {1, 2, 3, 8} over small morsels, must produce identical results to
//! the serial engine under every planner family.

use basilisk::{Catalog, PlannerKind, Query, QuerySession};
use basilisk_workload::{
    cnf_query, dnf_query, generate_imdb, generate_synthetic, job_query, ImdbConfig, SyntheticConfig,
};

fn synthetic_catalog() -> Catalog {
    let cfg = SyntheticConfig {
        rows: 3000,
        num_attrs: 4,
        ..SyntheticConfig::default()
    };
    let mut cat = Catalog::new();
    for t in generate_synthetic(&cfg).unwrap() {
        cat.add_table(t).unwrap();
    }
    cat
}

fn assert_parallel_equals_serial(cat: &Catalog, query: &Query, kinds: &[PlannerKind], ctx: &str) {
    for &kind in kinds {
        let serial = QuerySession::new(cat, query.clone())
            .unwrap()
            .with_workers(1);
        let reference = serial
            .execute(&serial.plan(kind).unwrap())
            .unwrap()
            .canonical_tuples();
        for workers in [2, 8] {
            let session = QuerySession::new(cat, query.clone())
                .unwrap()
                .with_workers(workers)
                .with_morsel_rows(256);
            let out = session
                .execute(&session.plan(kind).unwrap())
                .unwrap()
                .canonical_tuples();
            assert_eq!(
                out, reference,
                "{ctx}: {kind} with {workers} workers diverged from serial"
            );
            assert_eq!(session.scheduler().outstanding(), 0, "{ctx}: worker leak");
        }
    }
}

#[test]
fn synthetic_dnf_parallel_equals_serial() {
    let cat = synthetic_catalog();
    let q = dnf_query(3, 0.25, None);
    assert_parallel_equals_serial(
        &cat,
        &q,
        &[PlannerKind::TCombined, PlannerKind::BDisj],
        "dnf",
    );
    // The Fig. 4d outer-conjunct variant.
    let q = dnf_query(3, 0.3, Some(0.4));
    assert_parallel_equals_serial(&cat, &q, &[PlannerKind::TCombined], "dnf/outer");
}

#[test]
fn synthetic_cnf_parallel_equals_serial() {
    let cat = synthetic_catalog();
    let q = cnf_query(3, 0.35, None);
    assert_parallel_equals_serial(
        &cat,
        &q,
        &[PlannerKind::TCombined, PlannerKind::BPushConj],
        "cnf",
    );
}

/// A spread of JOB groups (one per table-combination shape) at a scale
/// big enough that the 256-row morsels actually fan out on the `title`
/// spine.
#[test]
fn job_groups_parallel_equals_serial() {
    let mut cat = Catalog::new();
    for t in generate_imdb(&ImdbConfig {
        scale: 0.08,
        seed: 42,
    })
    .unwrap()
    {
        cat.add_table(t).unwrap();
    }
    for group in [1, 7, 19, 33] {
        let jq = job_query(group, 42);
        assert_parallel_equals_serial(
            &cat,
            &jq.query,
            &[PlannerKind::TCombined, PlannerKind::BDisj],
            &format!("job/group{group}"),
        );
    }
}
