//! Property tests for the encoded-column layer: every column — including
//! non-finite floats and multi-byte strings — survives encode/decode and
//! encoded gather **bit-for-bit**, and zone-derived selectivities are
//! always probabilities.
//!
//! Floats compare by bit pattern (`to_bits`), not `==`: NaNs must
//! round-trip exactly, and `NaN == NaN` is false.

use basilisk_storage::{Column, ColumnBuilder, EncCmpOp, EncodedColumn};
use basilisk_types::{DataType, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cell {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

fn column_strategy() -> impl Strategy<Value = (DataType, Vec<Cell>)> {
    let dtype = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Str),
        Just(DataType::Bool),
    ];
    dtype.prop_flat_map(|dt| {
        let cell = match dt {
            DataType::Int => prop_oneof![
                1 => Just(Cell::Null),
                2 => Just(Cell::Int(i64::MIN)),
                2 => Just(Cell::Int(i64::MAX)),
                8 => any::<i64>().prop_map(Cell::Int)
            ]
            .boxed(),
            DataType::Float => prop_oneof![
                1 => Just(Cell::Null),
                1 => Just(Cell::Float(f64::NAN)),
                1 => Just(Cell::Float(f64::INFINITY)),
                1 => Just(Cell::Float(f64::NEG_INFINITY)),
                1 => Just(Cell::Float(-0.0)),
                8 => (-1e12f64..1e12).prop_map(Cell::Float)
            ]
            .boxed(),
            DataType::Str => prop_oneof![
                1 => Just(Cell::Null),
                8 => proptest::collection::vec(
                    prop_oneof![
                        Just('a'), Just('Z'), Just('0'), Just(' '),
                        Just('ü'), Just('ß'), Just('雪'), Just('🦎'),
                    ],
                    0..12
                )
                .prop_map(|cs| Cell::Str(cs.into_iter().collect()))
            ]
            .boxed(),
            DataType::Bool => prop_oneof![
                1 => Just(Cell::Null),
                8 => any::<bool>().prop_map(Cell::Bool)
            ]
            .boxed(),
        };
        proptest::collection::vec(cell, 0..400).prop_map(move |cells| (dt, cells))
    })
}

fn build(dt: DataType, cells: &[Cell]) -> Column {
    let mut b = ColumnBuilder::new(dt);
    for c in cells {
        let v = match c {
            Cell::Null => Value::Null,
            Cell::Int(i) => Value::Int(*i),
            Cell::Float(f) => Value::Float(*f),
            Cell::Str(s) => Value::Str(s.clone()),
            Cell::Bool(x) => Value::Bool(*x),
        };
        b.push(v).unwrap();
    }
    b.finish()
}

/// Lane-by-lane bit equality: validity must match, valid floats must
/// share a bit pattern, every other type compares by value.
fn assert_lanes_equal(a: &Column, b: &Column) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a.is_valid(i), b.is_valid(i), "validity at {i}");
        if !a.is_valid(i) {
            continue;
        }
        match (a.value(i), b.value(i)) {
            (Value::Float(x), Value::Float(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "float bits at {i}")
            }
            (x, y) => assert_eq!(x, y, "value at {i}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on every lane.
    #[test]
    fn encode_decode_roundtrip((dt, cells) in column_strategy()) {
        let col = build(dt, &cells);
        let enc = EncodedColumn::encode(&col);
        prop_assert_eq!(enc.len(), col.len());
        prop_assert_eq!(enc.data_type(), col.data_type());
        assert_lanes_equal(&enc.decode(), &col);
    }

    /// Encoded gather agrees with gathering the decoded column.
    #[test]
    fn encoded_gather_matches_decoded((dt, cells) in column_strategy(), seed in any::<u64>()) {
        let col = build(dt, &cells);
        prop_assume!(!col.is_empty());
        let enc = EncodedColumn::encode(&col);
        let mut rows = Vec::new();
        let mut x = seed | 1;
        for _ in 0..cells.len().min(64) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rows.push((x % col.len() as u64) as u32);
        }
        let gathered = enc.gather(&rows);
        prop_assert_eq!(gathered.len(), rows.len());
        for (j, &r) in rows.iter().enumerate() {
            let i = r as usize;
            prop_assert_eq!(gathered.is_valid(j), col.is_valid(i));
            if !col.is_valid(i) {
                continue;
            }
            match (gathered.value(j), col.value(i)) {
                (Value::Float(x), Value::Float(y)) => {
                    prop_assert_eq!(x.to_bits(), y.to_bits())
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    /// Zone-derived range selectivities are always finite probabilities.
    #[test]
    fn zone_selectivity_is_a_probability(ints in proptest::collection::vec(any::<i64>(), 0..300), lit in any::<i64>()) {
        let enc = EncodedColumn::encode(&Column::from_ints(ints));
        for op in [EncCmpOp::Eq, EncCmpOp::Ne, EncCmpOp::Lt, EncCmpOp::Le, EncCmpOp::Gt, EncCmpOp::Ge] {
            if let Some(s) = enc.zone_selectivity(op, &Value::Int(lit)) {
                prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{:?} → {}", op, s);
            }
        }
    }
}
