//! The planners (§4.2) and traditional baselines (§5).
//!
//! All planners share the greedy smallest-output join ordering. The tagged
//! planners differ in where they place filter operators:
//!
//! * **TPushdown** — every base predicate pushed to its table, sorted per
//!   table in benefiting order (Appendix A).
//! * **TPullup** (Algorithm 2) — starts from TPushdown and considers
//!   pulling each filter up one node at a time, keeping cheaper plans.
//! * **TIterPush** — starts with every filter above all joins and pushes
//!   filters down to the base tables when that is cheaper.
//! * **TPushConj** — mimics a traditional conjunct-pushdown planner
//!   (single-table root conjuncts pushed, the rest after the joins); under
//!   tagged execution its tag maps naturally degenerate to
//!   traditional behaviour (no neg-tags on pushed filters, full Cartesian
//!   join maps), which is how the paper measures the model's overhead.
//! * **TCombined** — costs the plan of each tagged planner and picks the
//!   cheapest.
//!
//! Baselines (executed on the traditional engine):
//!
//! * **BDisj** — each root clause of a disjunction runs as an independent
//!   query (with per-clause pushdown) and a deduplicating union merges the
//!   results.
//! * **BPushConj** — conjunct pushdown: single-table root conjuncts are
//!   pushed, the remaining conjuncts run after all joins in increasing
//!   selectivity order.

use std::collections::BTreeMap;

use basilisk_catalog::Estimator;
use basilisk_core::TagMapBuilder;
use basilisk_expr::{ExprId, NodeKind, PredicateTree};
use basilisk_types::{BasiliskError, Result};

use crate::aplan::APlan;
use crate::benefit::benefiting_order;
use crate::cost::{annotate_tagged, cost_traditional, CostModel, TaggedAnnotation};
use crate::join_order::{greedy_join_tree, local_survival};
use crate::query::Query;

/// Which planner to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerKind {
    TPushdown,
    TPullup,
    /// Extension (not in the paper's TCombined): the optimization the
    /// paper suggests for TPullup — "a more optimized version of the
    /// planner which pulls filter nodes up to the next join juncture
    /// could substantially decrease planning time". Candidate plans are
    /// only costed when a filter lands directly on a join.
    TPullupJoin,
    TIterPush,
    TPushConj,
    TCombined,
    BDisj,
    BPushConj,
}

impl PlannerKind {
    pub const ALL_TAGGED: [PlannerKind; 4] = [
        PlannerKind::TPushdown,
        PlannerKind::TPullup,
        PlannerKind::TIterPush,
        PlannerKind::TPushConj,
    ];

    pub fn is_tagged(self) -> bool {
        !matches!(self, PlannerKind::BDisj | PlannerKind::BPushConj)
    }

    pub fn name(self) -> &'static str {
        match self {
            PlannerKind::TPushdown => "TPushdown",
            PlannerKind::TPullup => "TPullup",
            PlannerKind::TPullupJoin => "TPullupJoin",
            PlannerKind::TIterPush => "TIterPush",
            PlannerKind::TPushConj => "TPushConj",
            PlannerKind::TCombined => "TCombined",
            PlannerKind::BDisj => "BDisj",
            PlannerKind::BPushConj => "BPushConj",
        }
    }
}

impl std::fmt::Display for PlannerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a planner needs.
pub struct PlannerInput<'a> {
    pub query: &'a Query,
    pub tree: &'a PredicateTree,
    pub est: &'a Estimator,
    pub builder: &'a TagMapBuilder<'a>,
    pub cm: &'a CostModel,
}

/// A planned query, ready for execution.
pub enum PlannedQuery {
    Tagged {
        aplan: APlan,
        ann: TaggedAnnotation,
        /// Which tagged planner produced the plan (TCombined records the
        /// winning subplanner).
        chosen: PlannerKind,
    },
    Traditional {
        aplan: APlan,
        cost: f64,
    },
}

impl PlannedQuery {
    pub fn estimated_cost(&self) -> f64 {
        match self {
            PlannedQuery::Tagged { ann, .. } => ann.cost,
            PlannedQuery::Traditional { cost, .. } => *cost,
        }
    }

    pub fn aplan(&self) -> &APlan {
        match self {
            PlannedQuery::Tagged { aplan, .. } => aplan,
            PlannedQuery::Traditional { aplan, .. } => aplan,
        }
    }
}

/// Plan `input.query` with the chosen planner.
pub fn plan(kind: PlannerKind, input: &PlannerInput<'_>) -> Result<PlannedQuery> {
    match kind {
        PlannerKind::TPushdown => tagged(input, t_pushdown(input)?, PlannerKind::TPushdown),
        PlannerKind::TPullup => t_pullup(input, false),
        PlannerKind::TPullupJoin => t_pullup(input, true),
        PlannerKind::TIterPush => t_iterpush(input),
        PlannerKind::TPushConj => tagged(input, conj_pushdown_plan(input)?, PlannerKind::TPushConj),
        PlannerKind::TCombined => t_combined(input),
        PlannerKind::BDisj => b_disj(input),
        PlannerKind::BPushConj => {
            let aplan = conj_pushdown_plan(input)?;
            let cost = cost_traditional(&aplan, input.tree, input.est, input.cm)?;
            Ok(PlannedQuery::Traditional { aplan, cost })
        }
    }
}

fn tagged(input: &PlannerInput<'_>, aplan: APlan, chosen: PlannerKind) -> Result<PlannedQuery> {
    let ann = annotate_tagged(&aplan, input.tree, input.builder, input.est, input.cm)?;
    Ok(PlannedQuery::Tagged { aplan, ann, chosen })
}

/// Atoms grouped by the alias they touch.
fn atoms_by_alias(tree: &PredicateTree) -> BTreeMap<String, Vec<ExprId>> {
    let mut map: BTreeMap<String, Vec<ExprId>> = BTreeMap::new();
    for id in tree.atom_ids() {
        let alias = tree.atom(id).expect("atom").table().to_owned();
        map.entry(alias).or_default().push(id);
    }
    map
}

/// Per-alias leaf plans with every atom pushed down (TPushdown's leaves):
/// filters stacked in benefiting order, cardinality scaled by the tagged
/// local-survival estimate.
fn pushdown_leaves(input: &PlannerInput<'_>) -> Result<Vec<(String, APlan, f64)>> {
    let by_alias = atoms_by_alias(input.tree);
    let mut leaves = Vec::new();
    for (alias, _) in &input.query.aliases {
        let mut plan = APlan::scan(alias.clone());
        if let Some(atoms) = by_alias.get(alias) {
            let ordered = benefiting_order(input.tree, input.est, atoms)?;
            // First in benefiting order runs first = innermost.
            for node in ordered {
                plan = APlan::filter(node, plan);
            }
        }
        let survival = local_survival(input.tree, input.est, alias)?;
        let card = input.est.rows(alias)? * survival;
        leaves.push((alias.clone(), plan, card.max(1.0)));
    }
    Ok(leaves)
}

/// TPushdown: push every predicate to the base tables, join greedily.
pub fn t_pushdown(input: &PlannerInput<'_>) -> Result<APlan> {
    let leaves = pushdown_leaves(input)?;
    greedy_join_tree(leaves, &input.query.joins, input.est)
}

/// TPullup (Algorithm 2): starting from TPushdown, consider pulling each
/// filter up one node at a time (in reverse benefiting order), keeping any
/// cheaper plan found.
///
/// With `junctures_only`, candidate plans are only costed when the pulled
/// filter lands directly above a join — the planning-time optimization
/// the paper proposes in §5.2 (extension; the faithful Algorithm 2 costs
/// every single-node pull).
pub fn t_pullup(input: &PlannerInput<'_>, junctures_only: bool) -> Result<PlannedQuery> {
    let base = t_pushdown(input)?;
    let mut best_ann = annotate_tagged(&base, input.tree, input.builder, input.est, input.cm)?;
    let mut best_plan = base;

    let mut order = benefiting_order(input.tree, input.est, &input.tree.atom_ids())?;
    order.reverse();
    for filter in order {
        let mut new_plan = best_plan.clone();
        while new_plan.can_pull_up(filter) {
            let Some(candidate) = new_plan.pull_up_filter(filter) else {
                break;
            };
            if !junctures_only || candidate.filter_sits_on_join(filter) {
                let cand_ann =
                    annotate_tagged(&candidate, input.tree, input.builder, input.est, input.cm)?;
                if cand_ann.cost < best_ann.cost {
                    best_plan = candidate.clone();
                    best_ann = cand_ann;
                }
            }
            new_plan = candidate;
        }
    }
    Ok(PlannedQuery::Tagged {
        aplan: best_plan,
        ann: best_ann,
        chosen: if junctures_only {
            PlannerKind::TPullupJoin
        } else {
            PlannerKind::TPullup
        },
    })
}

/// TIterPush: start with all joins first and every filter above them (in
/// benefiting order); push each filter down to its base table when that
/// yields a cheaper plan.
pub fn t_iterpush(input: &PlannerInput<'_>) -> Result<PlannedQuery> {
    // Base plan: raw scans joined greedily, filters stacked on top.
    let leaves: Vec<(String, APlan, f64)> = input
        .query
        .aliases
        .iter()
        .map(|(alias, _)| {
            Ok((
                alias.clone(),
                APlan::scan(alias.clone()),
                input.est.rows(alias)?,
            ))
        })
        .collect::<Result<_>>()?;
    let mut plan = greedy_join_tree(leaves, &input.query.joins, input.est)?;
    let order = benefiting_order(input.tree, input.est, &input.tree.atom_ids())?;
    // First in benefiting order runs first → innermost.
    for &node in &order {
        plan = APlan::filter(node, plan);
    }
    let mut best_ann = annotate_tagged(&plan, input.tree, input.builder, input.est, input.cm)?;
    let mut best_plan = plan;

    for &filter in &order {
        let alias = input
            .tree
            .atom(filter)
            .expect("atom filter")
            .table()
            .to_owned();
        let (removed, found) = best_plan.remove_filter(filter);
        if !found {
            continue;
        }
        let Some(candidate) = removed.insert_filter_above_scan(filter, &alias) else {
            continue;
        };
        let cand_ann = annotate_tagged(&candidate, input.tree, input.builder, input.est, input.cm)?;
        if cand_ann.cost < best_ann.cost {
            best_plan = candidate;
            best_ann = cand_ann;
        }
    }
    Ok(PlannedQuery::Tagged {
        aplan: best_plan,
        ann: best_ann,
        chosen: PlannerKind::TIterPush,
    })
}

/// The conjunct-pushdown plan shape shared by TPushConj and BPushConj:
/// root-AND children whose atoms all live on one table are pushed to that
/// table; the remaining children run after all joins in increasing
/// selectivity order. Non-AND roots are treated as a single conjunct.
pub fn conj_pushdown_plan(input: &PlannerInput<'_>) -> Result<APlan> {
    let tree = input.tree;
    let root = tree.root();
    let conjuncts: Vec<ExprId> = match tree.kind(root) {
        NodeKind::And(cs) => cs.clone(),
        _ => vec![root],
    };

    let mut pushed: BTreeMap<String, Vec<ExprId>> = BTreeMap::new();
    let mut residual: Vec<ExprId> = Vec::new();
    for c in conjuncts {
        let tables = tree.tables(c);
        if tables.len() == 1 {
            let alias = tables.into_iter().next().unwrap().to_owned();
            pushed.entry(alias).or_default().push(c);
        } else {
            residual.push(c);
        }
    }

    // Leaves with pushed conjuncts; cardinality = rows × Π sel.
    let mut leaves = Vec::new();
    for (alias, _) in &input.query.aliases {
        let mut plan = APlan::scan(alias.clone());
        let mut card = input.est.rows(alias)?;
        if let Some(nodes) = pushed.get(alias) {
            for &n in nodes {
                plan = APlan::filter(n, plan);
                card *= input.est.node_selectivity(tree, n)?;
            }
        }
        leaves.push((alias.clone(), plan, card.max(1.0)));
    }
    let mut plan = greedy_join_tree(leaves, &input.query.joins, input.est)?;

    // Residual conjuncts in increasing selectivity order (most selective
    // first).
    let mut with_sel: Vec<(f64, ExprId)> = residual
        .into_iter()
        .map(|n| Ok((input.est.node_selectivity(tree, n)?, n)))
        .collect::<Result<_>>()?;
    with_sel.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    for (_, n) in with_sel {
        plan = APlan::filter(n, plan);
    }
    Ok(plan)
}

/// TCombined: cost every tagged planner's plan, take the cheapest.
pub fn t_combined(input: &PlannerInput<'_>) -> Result<PlannedQuery> {
    let mut best: Option<PlannedQuery> = None;
    for kind in PlannerKind::ALL_TAGGED {
        let candidate = plan(kind, input)?;
        let better = match &best {
            None => true,
            Some(b) => candidate.estimated_cost() < b.estimated_cost(),
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or_else(|| BasiliskError::Plan("no tagged planner produced a plan".into()))
}

/// BDisj: every root clause of an OR-rooted predicate becomes an
/// independent subquery (with per-clause conjunct pushdown); a
/// deduplicating union merges the results. Non-OR roots fall back to
/// BPushConj.
pub fn b_disj(input: &PlannerInput<'_>) -> Result<PlannedQuery> {
    let tree = input.tree;
    let root = tree.root();
    let NodeKind::Or(clauses) = tree.kind(root) else {
        let aplan = conj_pushdown_plan(input)?;
        let cost = cost_traditional(&aplan, tree, input.est, input.cm)?;
        return Ok(PlannedQuery::Traditional { aplan, cost });
    };

    let mut children = Vec::with_capacity(clauses.len());
    for &clause in clauses {
        children.push(clause_plan(input, clause)?);
    }
    let aplan = APlan::Union { children };
    let cost = cost_traditional(&aplan, tree, input.est, input.cm)?;
    Ok(PlannedQuery::Traditional { aplan, cost })
}

/// One BDisj subquery: push the clause's single-table conjuncts, join all
/// tables greedily, apply cross-table conjuncts after the joins.
fn clause_plan(input: &PlannerInput<'_>, clause: ExprId) -> Result<APlan> {
    let tree = input.tree;
    let conjuncts: Vec<ExprId> = match tree.kind(clause) {
        NodeKind::And(cs) => cs.clone(),
        _ => vec![clause],
    };
    let mut pushed: BTreeMap<String, Vec<ExprId>> = BTreeMap::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        let tables = tree.tables(c);
        if tables.len() == 1 {
            pushed
                .entry(tables.into_iter().next().unwrap().to_owned())
                .or_default()
                .push(c);
        } else {
            residual.push(c);
        }
    }
    let mut leaves = Vec::new();
    for (alias, _) in &input.query.aliases {
        let mut plan = APlan::scan(alias.clone());
        let mut card = input.est.rows(alias)?;
        if let Some(nodes) = pushed.get(alias) {
            for &n in nodes {
                plan = APlan::filter(n, plan);
                card *= input.est.node_selectivity(tree, n)?;
            }
        }
        leaves.push((alias.clone(), plan, card.max(1.0)));
    }
    let mut plan = greedy_join_tree(leaves, &input.query.joins, input.est)?;
    let mut with_sel: Vec<(f64, ExprId)> = residual
        .into_iter()
        .map(|n| Ok((input.est.node_selectivity(tree, n)?, n)))
        .collect::<Result<_>>()?;
    with_sel.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    for (_, n) in with_sel {
        plan = APlan::filter(n, plan);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_core::TagMapStrategy;
    use basilisk_expr::{and, col, or, ColumnRef, Expr};
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    struct Fixture {
        _catalog: Box<Catalog>,
        query: Query,
        tree: PredicateTree,
        est: Estimator,
        cm: CostModel,
    }

    fn fixture(predicate: Expr) -> Fixture {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("name", DataType::Str);
        for i in 0..500i64 {
            b.push_row(vec![
                i.into(),
                (1900 + i % 120).into(),
                format!("movie {i} {}", if i % 97 == 0 { "godfather" } else { "x" }).into(),
            ])
            .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..800i64 {
            b.push_row(vec![(i % 500).into(), ((i % 100) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();

        let query = Query::new(vec![
            ("t".into(), "title".into()),
            ("mi".into(), "scores".into()),
        ])
        .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
        .filter(predicate);
        query.validate().unwrap();

        let est = Estimator::new(
            &cat,
            &[("t".into(), "title".into()), ("mi".into(), "scores".into())],
        )
        .unwrap();
        let tree = PredicateTree::build(query.predicate.as_ref().unwrap());
        Fixture {
            _catalog: Box::new(cat),
            query,
            tree,
            est,
            cm: CostModel::default(),
        }
    }

    fn dnf() -> Expr {
        or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ])
    }

    fn cnf() -> Expr {
        and(vec![
            or(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            or(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
        ])
    }

    fn run_planner(f: &Fixture, kind: PlannerKind) -> PlannedQuery {
        let builder =
            TagMapBuilder::new(&f.tree, TagMapStrategy::Generalized { use_closure: true });
        let input = PlannerInput {
            query: &f.query,
            tree: &f.tree,
            est: &f.est,
            builder: &builder,
            cm: &f.cm,
        };
        plan(kind, &input).unwrap()
    }

    #[test]
    fn tpushdown_pushes_all_atoms() {
        let f = fixture(dnf());
        let p = run_planner(&f, PlannerKind::TPushdown);
        let PlannedQuery::Tagged { aplan, ann, .. } = &p else {
            panic!("tagged plan expected")
        };
        assert_eq!(aplan.filters().len(), 4, "all four atoms pushed");
        // All filters below the join.
        let rendered = aplan.display(&f.tree);
        let join_pos = rendered.find("Join").unwrap();
        for line in rendered.lines().filter(|l| l.contains("Filter")) {
            let pos = rendered.find(line).unwrap();
            assert!(pos > join_pos, "filters under the join:\n{rendered}");
        }
        assert!(ann.cost > 0.0);
        assert!(!ann.projection.allowed.is_empty());
    }

    #[test]
    fn tpullup_never_worse_than_tpushdown() {
        let f = fixture(dnf());
        let push = run_planner(&f, PlannerKind::TPushdown);
        let pull = run_planner(&f, PlannerKind::TPullup);
        assert!(pull.estimated_cost() <= push.estimated_cost() + 1e-9);
    }

    /// The join-juncture extension: never worse than TPushdown, and its
    /// search visits a subset of TPullup's candidates, so it can't find a
    /// cheaper plan than TPullup.
    #[test]
    fn tpullup_join_juncture_variant() {
        for pred in [dnf(), cnf()] {
            let f = fixture(pred);
            let push = run_planner(&f, PlannerKind::TPushdown);
            let full = run_planner(&f, PlannerKind::TPullup);
            let fast = run_planner(&f, PlannerKind::TPullupJoin);
            assert!(fast.estimated_cost() <= push.estimated_cost() + 1e-9);
            assert!(full.estimated_cost() <= fast.estimated_cost() + 1e-9);
            let PlannedQuery::Tagged { chosen, .. } = fast else {
                panic!()
            };
            assert_eq!(chosen, PlannerKind::TPullupJoin);
        }
    }

    /// On the §4.2 pullup example the juncture variant finds the same
    /// winning plan as full TPullup (the winning position *is* above the
    /// join).
    #[test]
    fn tpullup_join_finds_the_section42_plan() {
        let f = fixture(and(vec![
            col("mi", "score").ge(9.9),
            col("t", "name").ilike("%godfather%"),
        ]));
        let fast = run_planner(&f, PlannerKind::TPullupJoin);
        let rendered = fast.aplan().display(&f.tree);
        assert!(
            rendered.find("Filter(t.name ILIKE").unwrap() < rendered.find("Join").unwrap(),
            "LIKE pulled above the join:\n{rendered}"
        );
    }

    #[test]
    fn titerpush_produces_valid_plan() {
        let f = fixture(dnf());
        let p = run_planner(&f, PlannerKind::TIterPush);
        let PlannedQuery::Tagged { aplan, .. } = &p else {
            panic!()
        };
        assert_eq!(aplan.filters().len(), 4);
        assert_eq!(aplan.scans().len(), 2);
    }

    #[test]
    fn tpullup_pulls_expensive_like_above_selective_join() {
        // The paper's §4.2 example: a highly selective score predicate
        // makes it cheaper to run the expensive LIKE after the join.
        let f = fixture(and(vec![
            col("mi", "score").ge(9.9),
            col("t", "name").ilike("%godfather%"),
        ]));
        let pull = run_planner(&f, PlannerKind::TPullup);
        let PlannedQuery::Tagged { aplan, .. } = &pull else {
            panic!()
        };
        let rendered = aplan.display(&f.tree);
        let like_pos = rendered.find("Filter(t.name ILIKE").unwrap();
        let join_pos = rendered.find("Join").unwrap();
        assert!(
            like_pos < join_pos,
            "LIKE should sit above the join:\n{rendered}"
        );
        let push = run_planner(&f, PlannerKind::TPushdown);
        assert!(pull.estimated_cost() < push.estimated_cost());
    }

    #[test]
    fn tcombined_picks_cheapest() {
        for pred in [dnf(), cnf()] {
            let f = fixture(pred);
            let combined = run_planner(&f, PlannerKind::TCombined);
            for kind in PlannerKind::ALL_TAGGED {
                let p = run_planner(&f, kind);
                assert!(
                    combined.estimated_cost() <= p.estimated_cost() + 1e-9,
                    "TCombined beat by {kind}"
                );
            }
            let PlannedQuery::Tagged { chosen, .. } = combined else {
                panic!()
            };
            assert!(chosen.is_tagged());
        }
    }

    #[test]
    fn bdisj_builds_union_of_clauses() {
        let f = fixture(dnf());
        let p = run_planner(&f, PlannerKind::BDisj);
        let PlannedQuery::Traditional { aplan, cost } = &p else {
            panic!("traditional plan expected")
        };
        let APlan::Union { children } = aplan else {
            panic!("BDisj must produce a union root")
        };
        assert_eq!(children.len(), 2);
        for c in children {
            assert_eq!(c.scans().len(), 2, "each clause joins all tables");
            assert_eq!(c.filters().len(), 2, "clause conjuncts pushed");
        }
        assert!(*cost > 0.0);
    }

    #[test]
    fn bdisj_falls_back_on_cnf() {
        let f = fixture(cnf());
        let p = run_planner(&f, PlannerKind::BDisj);
        let PlannedQuery::Traditional { aplan, .. } = &p else {
            panic!()
        };
        assert!(!matches!(aplan, APlan::Union { .. }));
    }

    #[test]
    fn bpushconj_cannot_push_cnf_cross_table_clauses() {
        // The §5.2 observation: every CNF clause spans two tables, so
        // BPushConj pushes nothing — all filters sit above the join.
        let f = fixture(cnf());
        let p = run_planner(&f, PlannerKind::BPushConj);
        let PlannedQuery::Traditional { aplan, .. } = &p else {
            panic!()
        };
        let rendered = aplan.display(&f.tree);
        let join_pos = rendered.find("Join").unwrap();
        for (pos, _) in rendered.match_indices("Filter") {
            assert!(pos < join_pos, "no filter below the join:\n{rendered}");
        }
    }

    #[test]
    fn bpushconj_pushes_single_table_conjuncts() {
        let f = fixture(and(vec![
            col("t", "year").gt(2000i64),
            or(vec![
                col("t", "year").gt(2010i64),
                col("mi", "score").gt(9.0),
            ]),
        ]));
        let p = run_planner(&f, PlannerKind::BPushConj);
        let rendered = p.aplan().display(&f.tree);
        let join_pos = rendered.find("Join").unwrap();
        let pushed_pos = rendered.find("Filter(t.year > 2000)").unwrap();
        let resid_pos = rendered.find("Filter(t.year > 2010 OR").unwrap();
        assert!(pushed_pos > join_pos, "single-table conjunct pushed");
        assert!(resid_pos < join_pos, "cross-table conjunct above join");
    }

    #[test]
    fn tpushconj_mimics_traditional_shape() {
        let f = fixture(cnf());
        let t = run_planner(&f, PlannerKind::TPushConj);
        let b = run_planner(&f, PlannerKind::BPushConj);
        assert_eq!(
            t.aplan().display(&f.tree),
            b.aplan().display(&f.tree),
            "same plan shape, different execution model"
        );
    }
}
