//! # basilisk-serve — the resident serving layer
//!
//! Everything below this crate executes *one* query as fast as the
//! hardware allows; this crate is what keeps that machinery **resident**
//! and shared so a serving loop — many clients, repeated statement
//! shapes — stops paying per-request setup:
//!
//! * **One worker pool.** A [`Server`] owns a single
//!   [`WorkerPool`](basilisk_sched::WorkerPool) of parked resident
//!   threads; every request's parallel regions run on it (serialized
//!   region-at-a-time by the pool, while the serial parts of concurrent
//!   requests overlap freely). No thread is ever spawned on the request
//!   path.
//! * **Reusable execution contexts.** A pool of
//!   [`ExecContext`](basilisk_plan::ExecContext)s — session arena +
//!   deferred-result ledger — is checked out per request through a
//!   **bounded fair admission gate** ([`ServerConfig::contexts`]
//!   concurrent executions, [`ServerConfig::queue_limit`] total in
//!   flight, per-client deficit-round-robin dispatch) and swept on
//!   return, so arena steady state (`fresh() == 0`) holds across
//!   *statements*, not just across executions of one statement.
//! * **A wire-ready request surface.** [`Server::submit`] takes a
//!   [`Request`] (ad-hoc SQL or a prepared handle + params, tagged with
//!   a client id and a [`Priority`]) and returns a [`Response`] or a
//!   typed [`ServeError`] (machine-readable [`ErrorKind`], retryable
//!   flag, load snapshot on overload) — the contract the
//!   `basilisk-net` HTTP/JSON front end serializes verbatim.
//!   [`Server::sql`] / [`Server::execute_prepared`] are thin wrappers
//!   over the same path for embedded callers.
//! * **A prepared-statement plan cache.** [`Server::prepare`] normalizes
//!   literals to `?n` placeholders, plans once, and caches the parsed
//!   [`Query`](basilisk_plan::Query) + chosen
//!   [`Plan`](basilisk_plan::Plan) (tag maps included) in an LRU keyed
//!   by the normalized text; [`Server::execute_prepared`] binds fresh
//!   values and re-drives the cached plan — **zero parse, zero plan**.
//!   [`Server::sql`] routes through the same cache (with an extra
//!   raw-text level so byte-identical repeats skip even lexing). A
//!   congruence guard re-plans the rare binding whose literal values
//!   change the predicate DAG (content interning can merge equal atoms).
//! * **Observability.** [`ServeStats`] snapshots cache
//!   hits/misses/evictions, admission-queue depth and high-water mark,
//!   per-lane admission counters, and a power-of-two latency histogram.
//!   [`Server::metrics_prometheus`] renders the same numbers — plus
//!   scheduler and arena counters — in Prometheus text exposition
//!   format (the `basilisk_serve_*` / `basilisk_sched_*` /
//!   `basilisk_arena_*` families; the names are a contract, see
//!   `ROADMAP.md`). Per-request tracing is opt-in via
//!   [`Request::trace`]: the [`Response`] then carries a
//!   [`TraceSpan`](basilisk_types::TraceSpan) tree mirroring the
//!   request's phases (`parse` → `plan` → `admission_wait` →
//!   `execute`) with one child span per plan operator, including
//!   per-atom short-circuit profiles. Requests slower than
//!   [`ServerConfig::slow_threshold_micros`] land in a bounded
//!   lock-free ring ([`Server::slow_queries`], [`SlowQuery`]) with
//!   their trace attached when one was recorded.
//!
//! Concurrent output is **bit-for-bit equal** to serial single-session
//! output: requests never share mutable execution state (contexts are
//! exclusive, worker arenas belong to the pool, merges stay ordered),
//! which the repository-level soak suite (`tests/serve_concurrent.rs`)
//! pins across client counts and planner kinds.

#![forbid(unsafe_code)]

// In check builds (`--cfg basilisk_check`) the admission gate and the
// stats recorder are exposed (doc-hidden) so the `basilisk-check`
// explorer can drive the DRR protocol directly under instrumented
// schedules; normal builds keep both private.
#[cfg(not(basilisk_check))]
mod admission;
#[cfg(basilisk_check)]
#[doc(hidden)]
pub mod admission;
mod api;
mod cache;
mod server;
#[cfg(not(basilisk_check))]
mod stats;
#[cfg(basilisk_check)]
#[doc(hidden)]
pub mod stats;

pub use api::{ErrorKind, OutputColumns, Priority, Request, Response, ServeError, ServeResult};
pub use cache::Prepared;
pub use server::{Server, ServerConfig, ServerConfigBuilder};
pub use stats::{LaneStats, ServeStats, SlowQuery, LATENCY_BUCKETS};

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_storage::TableBuilder;
    use basilisk_types::{DataType, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("name", DataType::Str);
        for i in 0..500i64 {
            b.push_row(vec![
                i.into(),
                (1900 + i % 120).into(),
                format!("film {}", i % 40).into(),
            ])
            .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("scores")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Float);
        for i in 0..800i64 {
            b.push_row(vec![(i % 500).into(), ((i % 100) as f64 / 10.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        cat
    }

    fn server() -> Server {
        Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(2)
                .workers(1)
                .build()
                .unwrap(),
        )
    }

    const Q: &str = "SELECT t.id FROM title t JOIN scores s ON t.id = s.movie_id \
                     WHERE t.year > 2000 AND s.score > 7.0 OR t.year < 1910";

    #[test]
    fn sql_hits_cache_on_repeat_and_on_same_shape() {
        let srv = server();
        let first = srv.sql(Q).unwrap();
        assert!(!first.cache_hit);
        let s = srv.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 1));
        assert_eq!(s.statements_prepared, 1);

        // Byte-identical repeat: raw-text hit, same answer.
        let again = srv.sql(Q).unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.row_count, first.row_count);

        // Same shape, different literals: normalized hit, no new plan.
        let shifted = srv
            .sql(
                "SELECT t.id FROM title t JOIN scores s ON t.id = s.movie_id \
                 WHERE t.year > 1990 AND s.score > 9.0 OR t.year < 1905",
            )
            .unwrap();
        assert!(shifted.cache_hit);
        let s = srv.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.statements_prepared, 1, "hit path does zero plan work");
        assert_eq!(s.statements_executed, 3);
        assert_eq!(srv.cached_statements(), 1);
    }

    #[test]
    fn prepare_execute_binds_params() {
        let srv = server();
        let stmt = srv.prepare(Q).unwrap();
        assert_eq!(stmt.param_count(), 3);
        let r1 = srv
            .execute_prepared(
                &stmt,
                &[Value::Int(2000), Value::Float(7.0), Value::Int(1910)],
            )
            .unwrap();
        let r2 = srv
            .execute_prepared(
                &stmt,
                &[Value::Int(1800), Value::Float(0.0), Value::Int(1800)],
            )
            .unwrap();
        assert!(r2.row_count > r1.row_count, "looser predicate, more rows");
        let s = srv.stats();
        assert_eq!(s.statements_prepared, 1, "executions planned nothing");
        // Arity errors are reported, not executed.
        assert!(srv.execute_prepared(&stmt, &[Value::Int(1)]).is_err());
        assert_eq!(srv.stats().errors, 1);
        // Same answer as the SQL path with those literals.
        let direct = srv
            .sql(
                "SELECT t.id FROM title t JOIN scores s ON t.id = s.movie_id \
                 WHERE t.year > 2000 AND s.score > 7.0 OR t.year < 1910",
            )
            .unwrap();
        assert_eq!(direct.row_count, r1.row_count);
    }

    #[test]
    fn prepare_twice_is_a_hit_and_handles_survive_eviction() {
        let srv = Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(1)
                .workers(1)
                .cache_capacity(1)
                .build()
                .unwrap(),
        );
        let a = srv
            .prepare("SELECT t.id FROM title t WHERE t.year > 2000")
            .unwrap();
        let a2 = srv
            .prepare("SELECT t.id FROM title t WHERE t.year > 1990")
            .unwrap();
        assert_eq!(a.key(), a2.key(), "same shape");
        assert_eq!(srv.stats().cache_hits, 1);
        // A second shape evicts the first (capacity 1)…
        let b = srv
            .prepare("SELECT t.id FROM title t WHERE t.year < 1920")
            .unwrap();
        assert_eq!(srv.stats().cache_evictions, 1);
        assert_eq!(srv.cached_statements(), 1);
        // …but the held handle still executes without replanning.
        let r = srv.execute_prepared(&a, &[Value::Int(2000)]).unwrap();
        assert!(r.row_count > 0);
        let r = srv.execute_prepared(&b, &[Value::Int(1920)]).unwrap();
        assert!(r.row_count > 0);
        assert_eq!(
            srv.stats().statements_prepared,
            2,
            "evictions never force a held handle to replan"
        );
    }

    #[test]
    fn value_coincident_binding_replans_safely() {
        let srv = server();
        // Template with two distinct atoms over the same column.
        let stmt = srv
            .prepare("SELECT t.id FROM title t WHERE t.year > 2000 OR t.year > 1910")
            .unwrap();
        let planned_before = srv.stats().statements_prepared;
        // Bind both parameters to the SAME value: the two atoms intern to
        // one node, the DAG changes, and the cached plan must not be
        // driven over the rebound tree.
        let r = srv
            .execute_prepared(&stmt, &[Value::Int(1950), Value::Int(1950)])
            .unwrap();
        let direct = srv
            .sql("SELECT t.id FROM title t WHERE t.year > 1950 OR t.year > 1950")
            .unwrap();
        assert_eq!(r.row_count, direct.row_count);
        assert!(
            srv.stats().statements_prepared > planned_before,
            "non-congruent binding re-planned"
        );
        // A congruent binding afterwards still reuses the cached plan.
        let planned = srv.stats().statements_prepared;
        let r = srv
            .execute_prepared(&stmt, &[Value::Int(2000), Value::Int(1910)])
            .unwrap();
        assert!(r.row_count > 0);
        assert_eq!(srv.stats().statements_prepared, planned);
    }

    /// Binding NULL into a statement planned two-valued must upgrade to
    /// a three-valued re-plan: `t.year > NULL` is unknown on every row,
    /// and only 3VL tag maps keep such rows alive for the other
    /// disjunct. The answer must match both SQL semantics and the
    /// literal-NULL text form.
    #[test]
    fn null_binding_upgrades_to_three_valued() {
        let srv = server();
        let stmt = srv
            .prepare("SELECT t.id FROM title t WHERE t.year > 2100 OR t.id < 7")
            .unwrap();
        let planned = srv.stats().statements_prepared;
        let null_bound = srv
            .execute_prepared(&stmt, &[Value::Null, Value::Int(7)])
            .unwrap();
        // year > NULL is unknown everywhere; id < 7 keeps rows 0..=6.
        assert_eq!(null_bound.row_count, 7, "unknown OR true must keep the row");
        assert!(
            !null_bound.cache_hit,
            "NULL binding cannot reuse the 2VL plan"
        );
        assert!(
            srv.stats().statements_prepared > planned,
            "NULL binding re-planned three-valued"
        );
        drop(null_bound);
        // The literal-NULL text form agrees (exercises the session-level
        // NULL-literal detection on a fresh plan).
        let direct = srv
            .sql("SELECT t.id FROM title t WHERE t.year > NULL OR t.id < 7")
            .unwrap();
        assert_eq!(direct.row_count, 7);
        drop(direct);
        // A non-NULL rebinding of the same handle still reuses the plan.
        let planned = srv.stats().statements_prepared;
        let rebound = srv
            .execute_prepared(&stmt, &[Value::Int(2100), Value::Int(7)])
            .unwrap();
        assert_eq!(rebound.row_count, 7);
        assert_eq!(srv.stats().statements_prepared, planned);
        // Live results pin their pooled columns (and a shadowed binding
        // would stay live to end of scope!); release explicitly before
        // the leak check.
        drop(rebound);
        assert_eq!(srv.outstanding(), 0);
    }

    #[test]
    fn count_star_limit_and_star_lowering() {
        let srv = server();
        let c = srv
            .sql("SELECT COUNT(*) FROM title t WHERE t.year > 2000")
            .unwrap();
        assert_eq!(c.row_count, 1);
        assert_eq!(c.columns.len(), 1);
        let star = srv.sql("SELECT * FROM title t LIMIT 7").unwrap();
        assert_eq!(star.row_count, 7);
        assert_eq!(star.columns.len(), 3, "star expanded at prepare time");
        assert_eq!(star.columns[0].1.len(), 7, "limit gathered");
        // Different LIMIT is a different shape (never a stale hit).
        let star3 = srv.sql("SELECT * FROM title t LIMIT 3").unwrap();
        assert!(!star3.cache_hit);
        assert_eq!(star3.row_count, 3);
    }

    #[test]
    fn errors_surface_and_leak_nothing() {
        let srv = server();
        assert!(srv.sql("SELECT * FROM nope").is_err());
        assert!(srv.sql("SELECT broken").is_err());
        assert!(srv.prepare("SELECT * FROM title t WHERE t.zz > 1").is_err());
        // Type error at bind time (LIKE bound to an int).
        let stmt = srv
            .prepare("SELECT t.id FROM title t WHERE t.name LIKE '%film%'")
            .unwrap();
        assert!(srv.execute_prepared(&stmt, &[Value::Int(3)]).is_err());
        // Runtime type error (string column vs int literal) — after a
        // successful prepare of a congruent shape.
        let stmt = srv
            .prepare("SELECT t.id FROM title t WHERE t.name > 'zzz'")
            .unwrap();
        assert!(srv.execute_prepared(&stmt, &[Value::Int(9)]).is_err());
        assert!(srv.stats().errors >= 4);
        assert_eq!(srv.outstanding(), 0, "error paths strand no buffers");
    }

    #[test]
    fn admission_rejects_beyond_queue_limit() {
        // queue_limit 1 with a held context: a second concurrent request
        // must be rejected, not queued forever.
        let srv = std::sync::Arc::new(Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(1)
                .queue_limit(1)
                .workers(1)
                .build()
                .unwrap(),
        ));
        // Saturate from another thread by running many queries while the
        // main thread hammers; with limit 1, at least one side must see a
        // rejection OR all succeed serially — assert the invariant that
        // rejections are counted iff they errored with "busy".
        let srv2 = std::sync::Arc::clone(&srv);
        let h = std::thread::spawn(move || {
            let mut busy = 0u64;
            for _ in 0..50 {
                match srv2.sql(Q) {
                    Ok(_) => {}
                    Err(e) => {
                        assert!(e.to_string().contains("busy"), "{e}");
                        busy += 1;
                    }
                }
            }
            busy
        });
        let mut busy = 0u64;
        for _ in 0..50 {
            match srv.sql(Q) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.to_string().contains("busy"), "{e}");
                    busy += 1;
                }
            }
        }
        busy += h.join().unwrap();
        let s = srv.stats();
        assert_eq!(s.rejected, busy, "every rejection was counted");
        assert_eq!(s.queue_depth, 0, "system drained");
        assert!(s.queue_high_water <= 1);
        assert_eq!(s.statements_executed + s.rejected, 100);
    }

    #[test]
    fn stats_latency_histogram_records_queries() {
        let srv = server();
        for _ in 0..5 {
            srv.sql(Q).unwrap();
        }
        let s = srv.stats();
        assert_eq!(s.latency_count(), 5);
        assert!(s.mean_latency() > std::time::Duration::ZERO);
        assert!(s.quantile_latency(1.0) >= s.quantile_latency(0.5));
    }

    #[test]
    fn traced_request_attaches_well_formed_span_tree() {
        let srv = server();
        let untraced = srv.sql(Q).unwrap();
        let traced = srv.submit(Request::sql(Q).trace(true)).unwrap();
        assert_eq!(
            traced.row_count, untraced.row_count,
            "tracing must not change the answer"
        );
        let root = traced.trace.as_ref().expect("trace requested");
        assert_eq!(root.name, "request");
        assert!(root.is_well_formed());
        // The cache-hit path skips the parse span but still plans/waits/
        // executes.
        let plan = root.child("plan").expect("plan span");
        assert_eq!(plan.int("cache_hit"), Some(1));
        assert_eq!(plan.int("rebind"), Some(0));
        let wait = root.child("admission_wait").expect("admission span");
        assert_eq!(wait.str_attr("lane"), Some(""));
        assert_eq!(wait.str_attr("priority"), Some("normal"));
        let exec = root.child("execute").expect("execute span");
        assert!(exec.int("rows").is_some());
        // Operator spans nest under "execute" and mirror the plan tree.
        assert!(!exec.descendants("scan").is_empty());
        let filters: Vec<_> = exec
            .descendants("tagged_filter")
            .into_iter()
            .chain(exec.descendants("filter"))
            .collect();
        assert!(!filters.is_empty(), "predicate query records filter spans");
        for f in &filters {
            assert!(!f.descendants("atom").is_empty(), "atom profiles attached");
        }

        // A cold shape records the parse span too.
        let cold = srv
            .submit(Request::sql("SELECT t.id FROM title t WHERE t.year > 1999").trace(true))
            .unwrap();
        let root = cold.trace.as_ref().unwrap();
        assert!(root.child("parse").is_some(), "cache miss parses");
        assert_eq!(root.child("plan").unwrap().int("cache_hit"), Some(0));

        // Untraced requests carry no tree.
        assert!(srv.sql(Q).unwrap().trace.is_none());
        // Live responses pin their pooled columns; release before the
        // leak check.
        drop((untraced, traced, cold));
        assert_eq!(srv.outstanding(), 0);
    }

    #[test]
    fn slow_query_ring_records_and_stays_bounded() {
        let srv = Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(1)
                .workers(1)
                .slow_threshold_micros(0) // record every request
                .slow_log_capacity(3)
                .build()
                .unwrap(),
        );
        for i in 0..5 {
            let traced = i % 2 == 0;
            srv.submit(Request::sql(Q).trace(traced)).unwrap();
        }
        let slow = srv.slow_queries();
        assert_eq!(slow.len(), 3, "ring keeps the newest `capacity` entries");
        // Newest first, strictly decreasing sequence numbers.
        assert!(slow.windows(2).all(|w| w[0].0 > w[1].0));
        assert_eq!(slow[0].0, 4, "five requests pushed, newest seq is 4");
        for (seq, q) in &slow {
            assert_eq!(q.statement, slow[0].1.statement, "same normalized shape");
            assert_eq!(q.priority, "normal");
            // Even requests were traced; the ring preserves the tree.
            assert_eq!(q.trace.is_some(), seq % 2 == 0);
        }
        assert!(
            srv.metrics_prometheus()
                .contains("basilisk_serve_slow_recorded_total 5"),
            "total-ever-recorded survives ring wraparound"
        );

        // The default threshold (10ms) should not trip on this tiny
        // catalog… but a u64::MAX threshold definitely never records.
        let quiet = Server::new(
            catalog(),
            ServerConfig::builder()
                .contexts(1)
                .workers(1)
                .slow_threshold_micros(u64::MAX)
                .build()
                .unwrap(),
        );
        quiet.sql(Q).unwrap();
        assert!(quiet.slow_queries().is_empty());
    }

    #[test]
    fn metrics_exposition_covers_serve_sched_and_arena() {
        let srv = server();
        for _ in 0..3 {
            srv.sql(Q).unwrap();
        }
        srv.submit(Request::sql(Q).client("alice").trace(true))
            .unwrap();
        let text = srv.metrics_prometheus();
        for family in [
            "basilisk_serve_cache_hits_total",
            "basilisk_serve_cache_misses_total",
            "basilisk_serve_statements_executed_total",
            "basilisk_serve_latency_micros_bucket",
            "basilisk_serve_latency_micros_count",
            "basilisk_serve_lane_admitted_total",
            "basilisk_sched_workers",
            "basilisk_sched_tasks_total",
            "basilisk_sched_region_wait_micros_sum",
            "basilisk_arena_outstanding",
            "basilisk_arena_fresh_total",
            "basilisk_storage_skipped_morsels_total",
            "basilisk_storage_scanned_morsels_total",
        ] {
            assert!(text.contains(family), "missing family {family}:\n{text}");
        }
        assert!(
            text.contains("basilisk_serve_lane_admitted_total{client=\"alice\"}"),
            "per-lane labels present:\n{text}"
        );
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("name value");
            assert!(!metric.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
        // Executed count round-trips through the exposition.
        assert!(text.contains(&format!(
            "basilisk_serve_statements_executed_total {}",
            srv.stats().statements_executed
        )));
    }
}
