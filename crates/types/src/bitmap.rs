//! Dense bitsets over tuple positions.
//!
//! Tagged relations (§2.5.1) keep a single immutable index relation and
//! represent each relational slice as a bitmap over its positions. Filters
//! never move tuples; they only update bitmaps — which is exactly why the
//! paper found the bitmap representation faster than physically separating
//! slices. This module is the workhorse for that representation and for the
//! storage engine's selective column reads.

use std::fmt;

pub(crate) const WORD_BITS: usize = 64;

/// A fixed-length dense bitset.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// An all-ones bitmap of `len` bits.
    pub fn all_set(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build from an iterator of set positions (all must be `< len`).
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut bm = Bitmap::new(len);
        for i in indices {
            bm.set(i);
        }
        bm
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Bitmap::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.set(i);
            }
        }
        bm
    }

    /// Number of bits (set or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fraction of bits set; 0 for empty bitmaps. This is the "selectivity"
    /// the storage layer compares against its sequential-read threshold.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] >> (idx % WORD_BITS) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, idx: usize) {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    #[inline]
    pub fn clear(&mut self, idx: usize) {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    #[inline]
    pub fn assign(&mut self, idx: usize, value: bool) {
        if value {
            self.set(idx);
        } else {
            self.clear(idx);
        }
    }

    /// `self |= other`. Panics when lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &Bitmap) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Flip every bit.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Non-mutating set operations.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    pub fn difference(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// True when `self` and `other` share no set bit — the mutual-exclusivity
    /// invariant between relational slices (§2.1).
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        self.check_len(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when every set bit of `self` is set in `other`.
    pub fn is_subset(&self, other: &Bitmap) -> bool {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate set-bit positions in increasing order.
    pub fn iter_ones(&self) -> BitmapIter<'_> {
        BitmapIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect set positions as `u32` row ids.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        self.indices_into(&mut out);
        out
    }

    /// Like [`Self::to_indices`], but writes into a caller-supplied vector
    /// (cleared first) so looping callers can reuse one allocation.
    pub fn indices_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.count_ones());
        out.extend(self.iter_ones().map(|i| i as u32));
    }

    /// Position of the first set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Reinitialize to an all-zeros bitmap of `len` bits, reusing the
    /// existing word buffer when its capacity suffices — the reset half of
    /// the [`crate::MaskArena`] checkout → evaluate → recycle lifecycle.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Set every bit (in-place counterpart of [`Self::all_set`]).
    pub fn fill_ones(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Become a copy of `other`, reusing the existing word buffer when its
    /// capacity suffices (unlike `Clone::clone`, never shrinks capacity).
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// The backing words (tail bits beyond `len` are always zero). Exposed
    /// for word-granular kernels (e.g. branchless compare-into-word atom
    /// evaluation over validity/selection words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-buffer capacity, used by [`crate::MaskArena`] to pick a pooled
    /// buffer that can be reset without reallocating.
    pub(crate) fn words_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Stable identity of this bitmap's heap storage for the
    /// `basilisk_check` buffer-ownership registry (0 when there is no
    /// allocation to track). Pooled bitmaps are reset — never grown —
    /// between checkouts, so the address is stable across one
    /// checkout/recycle round trip.
    #[cfg(basilisk_check)]
    pub(crate) fn check_key(&self) -> usize {
        if self.words.capacity() == 0 {
            0
        } else {
            self.words.as_ptr() as usize
        }
    }

    /// Overwrite word `w`, masking any bits beyond `len` in the tail word
    /// so the zero-tail invariant holds. Used by the word-granular
    /// [`crate::TruthMask::set_word`] kernel entry point.
    #[inline]
    pub(crate) fn store_word(&mut self, w: usize, word: u64) {
        let tail_bits = self.len % WORD_BITS;
        let is_tail = w + 1 == self.words.len() && tail_bits != 0;
        self.words[w] = if is_tail {
            word & ((1u64 << tail_bits) - 1)
        } else {
            word
        };
    }

    /// Mutable word access for sibling modules ([`crate::TruthMask`]);
    /// callers must re-establish the zero-tail invariant via
    /// [`Self::mask_tail`] after setting bits past `len`.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    pub(crate) fn mask_tail(&mut self) {
        let tail_bits = self.len % WORD_BITS;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    #[inline]
    fn check_len(&self, other: &Bitmap) {
        assert_eq!(
            self.len, other.len,
            "bitmap length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap(len={}, ones=[", self.len)?;
        for (i, pos) in self.iter_ones().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if i >= 16 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{pos}")?;
        }
        write!(f, "])")
    }
}

/// Iterator over set-bit positions produced by [`Bitmap::iter_ones`].
pub struct BitmapIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(130);
        assert!(!bm.get(0));
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
        bm.assign(5, true);
        bm.assign(0, false);
        assert_eq!(bm.to_indices(), vec![5, 129]);
    }

    #[test]
    fn all_set_masks_tail() {
        let bm = Bitmap::all_set(70);
        assert_eq!(bm.count_ones(), 70);
        assert!((bm.selectivity() - 1.0).abs() < 1e-12);
        let mut neg = bm.clone();
        neg.negate();
        assert!(neg.is_zero());
    }

    #[test]
    fn negate_within_bounds() {
        let mut bm = Bitmap::from_indices(10, [1, 3, 5]);
        bm.negate();
        assert_eq!(bm.to_indices(), vec![0, 2, 4, 6, 7, 8, 9]);
        assert_eq!(bm.len(), 10);
    }

    #[test]
    fn set_algebra() {
        let a = Bitmap::from_indices(100, [1, 2, 3, 64, 99]);
        let b = Bitmap::from_indices(100, [2, 3, 4, 65, 99]);
        assert_eq!(a.union(&b).to_indices(), vec![1, 2, 3, 4, 64, 65, 99]);
        assert_eq!(a.intersect(&b).to_indices(), vec![2, 3, 99]);
        assert_eq!(a.difference(&b).to_indices(), vec![1, 64]);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b.difference(&a)));
        assert!(a.intersect(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0usize, 63, 64, 127, 128, 200];
        let bm = Bitmap::from_indices(256, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
        assert_eq!(bm.first_one(), Some(0));
    }

    #[test]
    fn empty_and_zero() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert!(bm.is_zero());
        assert_eq!(bm.selectivity(), 0.0);
        assert_eq!(bm.iter_ones().count(), 0);
        assert_eq!(bm.first_one(), None);
        let bm = Bitmap::new(17);
        assert!(bm.is_zero());
        assert!(!bm.is_empty());
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools = [true, false, true, true, false];
        let bm = Bitmap::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(11);
        a.union_with(&b);
    }
}
