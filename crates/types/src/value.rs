//! Dynamically typed SQL values and their data types.

use std::cmp::Ordering;
use std::fmt;

/// The storage type of a column.
///
/// Basilisk is a column store (§2.5.1); every column has exactly one
/// `DataType` and an optional null bitmap. The set of types mirrors what the
/// paper's workloads need: 64-bit integers for keys and years, 64-bit floats
/// for the synthetic `A*` attributes, UTF-8 strings for titles/scores (the
/// IMDB `info` column stores scores as strings, hence `score > '8.0'` in the
/// paper), and booleans for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
}

impl DataType {
    /// Human-readable SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Str => "TEXT",
            DataType::Bool => "BOOLEAN",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single dynamically typed SQL value.
///
/// `Null` is a first-class value: comparisons against it evaluate to
/// [`Truth::Unknown`](crate::Truth::Unknown) rather than true/false, which is
/// what drives the three-valued-logic extension of §3.4.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for `Null` (NULL is untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL comparison: returns `None` when either side is NULL (unknown) or
    /// the types are incomparable, otherwise the ordering.
    ///
    /// Ints and floats compare numerically against each other; strings
    /// compare lexicographically (this is exactly why the paper's
    /// `mi_idx.score > '7.0'` works: IMDB stores scores as strings and
    /// `'7.5' > '7.0'` lexicographically).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality as three-valued logic would see it: `None` for NULL
    /// operands, otherwise whether the values are equal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Extract an `i64`, coercing floats with truncation. Used by join key
    /// hashing for numeric keys.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// `PartialEq` is *structural* equality (NULL == NULL), used for literals in
/// expression trees and test assertions — not SQL equality, which is
/// [`Value::sql_eq`].
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.0).sql_cmp(&Value::Int(4)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(10).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn cmp_strings_lexicographic_like_imdb_scores() {
        // The paper's Query 1 relies on lexicographic string comparison.
        assert_eq!(
            Value::from("7.5").sql_cmp(&Value::from("7.0")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::from("9.3").sql_cmp(&Value::from("8.0")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::from("10.0").sql_cmp(&Value::from("9.0")),
            Some(Ordering::Less),
            "lexicographic, not numeric"
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn mismatched_types_incomparable() {
        assert_eq!(Value::from("3").sql_cmp(&Value::Int(3)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn structural_eq_and_hash_handle_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float(1.5));
        assert!(set.contains(&Value::Float(1.5)));
        assert!(!set.contains(&Value::Float(2.5)));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::from("it's").to_string(), "'it''s'");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
    }
}
