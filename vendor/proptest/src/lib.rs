//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal re-implementation of the proptest API its test suites use:
//! strategies ([`Strategy`], [`Just`], ranges, tuples, [`collection::vec`],
//! [`option::of`], [`prop_oneof!`], `prop_recursive`, `prop_map`,
//! `prop_flat_map`, `boxed`) and the [`proptest!`] test macro with
//! `prop_assert*`/`prop_assume`.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   scope; the deterministic per-test seed makes every failure exactly
//!   reproducible, which is what matters for CI.
//! * **Deterministic seeding.** The RNG seed is derived from the test's
//!   name, so runs are stable across machines. CI sets `PROPTEST_RNG_SEED`
//!   (to the run id) so successive CI runs explore fresh corpora while any
//!   failure stays reproducible by exporting the same value locally.

use std::fmt::Write as _;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 RNG used by every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from the test name (FNV-1a), so each test gets a
    /// stable but distinct stream. Set `PROPTEST_RNG_SEED` to mix an
    /// extra seed in (CI passes its run id so successive runs explore
    /// different corpora); the failure message of any panicking case
    /// includes the test name, so `PROPTEST_RNG_SEED=<value>` reproduces
    /// the exact inputs.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (proptest's core trait, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Recursive strategies: `depth` levels of `recurse` applied over the
    /// leaf, choosing between "stop at a leaf" and "go deeper" at each
    /// level. `_desired_size`/`_expected_branch` are accepted for API
    /// compatibility; depth alone bounds our generation.
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = OneOf::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted union backing [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from a regex-ish pattern. Supports the single shape
/// the workspace uses — `[class]{lo,hi}` with `a-z` ranges and literal
/// characters in the class — and treats anything else as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                let mut s = String::with_capacity(len);
                for _ in 0..len {
                    s.push(chars[rng.below(chars.len())]);
                }
                s
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.trim().parse().ok()?;
    let hi: usize = counts.1.trim().parse().ok()?;
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

pub struct ArbStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    ArbStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`](fn@vec): a range or an exact count.
    pub trait IntoSizeRange {
        /// Inclusive lower bound, inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below(self.hi - self.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` three quarters of the time, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Render generated inputs for failure messages.
pub fn describe_case(parts: &[(&str, &dyn std::fmt::Debug)]) -> String {
    let mut s = String::new();
    for (name, value) in parts {
        let _ = write!(s, "\n  {name} = {value:?}");
    }
    s
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_oneof_cover_domain() {
        let mut rng = TestRng::for_test("ranges");
        let s = prop_oneof![1 => Just(0i64), 3 => 10i64..20];
        let mut small = 0;
        for _ in 0..400 {
            let v = s.generate(&mut rng);
            assert!(v == 0 || (10..20).contains(&v));
            if v == 0 {
                small += 1;
            }
        }
        assert!(small > 40 && small < 200, "weighting off: {small}");
    }

    #[test]
    fn recursive_terminates_and_nests() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..5).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 2..4).prop_map(T::Node)
        });
        let mut rng = TestRng::for_test("rec");
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth bound violated: {d}");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "never recursed");
    }

    #[test]
    fn class_pattern_strings() {
        let mut rng = TestRng::for_test("strings");
        let s = "[a-c0-1 ]{2,5}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.chars().all(|c| "abc01 ".contains(c)));
        }
        let lit = Strategy::generate(&"hello", &mut rng);
        assert_eq!(lit, "hello");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0i64..100, 1..10), b in any::<bool>()) {
            prop_assert!(v.len() < 10);
            prop_assume!(!v.is_empty());
            prop_assert_eq!(v[0], v[0], "b = {}", b);
        }
    }
}
