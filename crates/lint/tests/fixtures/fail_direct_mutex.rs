// Fixture: façade-only crate importing std::sync locks directly —
// `sync-facade` must fire (twice: the use group and the inline path).

use std::sync::{Arc, Mutex};

fn guard() -> std::sync::MutexGuard<'static, ()> {
    unimplemented!()
}
