//! CI bench-smoke emitter and regression gate.
//!
//! Runs the `benches/eval.rs` workloads in quick mode with a built-in
//! wall-clock harness (bins cannot see the criterion dev-dependency),
//! writes the results as JSON (`BENCH_eval.json`), and — when given a
//! baseline — fails the process if a gated metric regressed beyond the
//! tolerance.
//!
//! **Gated metrics are ratios, not absolute times.** CI machines differ
//! wildly in absolute throughput, but the *speedup* of the word-parallel
//! or-fold over the scalar fold (and of the branchless compare kernel
//! over the branching one) is a property of the code, measured
//! within-run on the same box. `benches/baseline.json` stores
//! conservative floors for those ratios; a >`tolerance` drop below a
//! floor fails the gate.
//!
//! ```text
//! bench_json [--out BENCH_eval.json] [--baseline benches/baseline.json]
//!            [--tolerance 0.25] [--samples 30]
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use basilisk::{Catalog, PlannerKind, Query, QuerySession, TableBuilder};
use basilisk_bench::workload::{int_column_with_nulls, provider, wide_disjunction, ROWS};
use basilisk_bench::Args;
use basilisk_expr::eval::{
    eval_atom_mask, eval_node, eval_node_mask, eval_node_mask_morsel, MapProvider,
};
use basilisk_expr::{and, col, or, Atom, CmpOp, ColumnRef, PredicateTree};
use basilisk_storage::Column;
use basilisk_types::{Bitmap, DataType, MaskArena, Morsel, Truth, TruthMask, Value};

/// Median wall-clock nanoseconds of `f` over `samples` runs (one warmup).
fn time_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<u128> = (0..samples.max(3))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

struct Report {
    entries: Vec<(String, f64)>,
}

impl Report {
    fn push(&mut self, name: &str, median_ns: f64) {
        println!("  {name:<40} {:>12.0} ns", median_ns);
        self.entries.push((name.to_string(), median_ns));
    }

    fn get(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing bench entry {name}"))
    }

    fn to_json(&self, derived: &[(String, f64)]) -> String {
        let mut s = String::from("{\n  \"rows\": 65536,\n  \"benches\": {\n");
        for (i, (name, ns)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {{\"median_ns\": {ns:.1}}}{sep}");
        }
        s.push_str("  },\n  \"derived\": {\n");
        for (i, (name, v)) in derived.iter().enumerate() {
            let sep = if i + 1 == derived.len() { "" } else { "," };
            let _ = writeln!(s, "    \"{name}\": {v:.3}{sep}");
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// Minimal flat-JSON number extraction: finds `"key": <number>`
/// (sufficient for baseline.json, which this binary also documents the
/// schema of). Scans *every* occurrence and keeps the last one followed
/// by a colon and a number, so a key name quoted inside the `_comment`
/// string cannot shadow the real entry and silently disable the gate.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let mut found = None;
    let mut from = 0;
    while let Some(pos) = doc[from..].find(&needle) {
        let at = from + pos + needle.len();
        from = at;
        let Some(rest) = doc[at..].trim_start().strip_prefix(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse() {
            found = Some(v);
        }
    }
    found
}

fn main() {
    let args = Args::parse();
    let out_path = args.get("--out").unwrap_or("BENCH_eval.json").to_string();
    let baseline_path = args.get("--baseline").map(str::to_string);
    let tolerance = args.get_f64("--tolerance", 0.25);
    let samples = args.get_usize("--samples", 30);

    let prov = provider();
    let arena = MaskArena::new();
    let mut report = Report {
        entries: Vec::new(),
    };
    println!("bench_json: {samples} samples per benchmark, {ROWS} rows");

    // --- or-fold of pre-evaluated atoms: scalar vs word-parallel -------
    let tree = PredicateTree::build(&wide_disjunction(500));
    let atoms = tree.atom_ids();
    let scalar_vecs: Vec<Vec<Truth>> = atoms
        .iter()
        .map(|&id| eval_node(&tree, id, &prov).unwrap())
        .collect();
    let masks: Vec<TruthMask> = scalar_vecs
        .iter()
        .map(|v| TruthMask::from_truths(v))
        .collect();
    report.push(
        "or_fold/scalar",
        time_ns(samples, || {
            let mut acc = scalar_vecs[0].clone();
            for v in &scalar_vecs[1..] {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a = a.or(x);
                }
            }
            acc.len()
        }),
    );
    report.push(
        "or_fold/vectorized",
        time_ns(samples, || {
            // All-false is the OR identity, so a pooled mask folds the
            // same result the scalar clone-then-fold computes.
            let mut m = arena.mask(ROWS);
            m.or_with(&masks[0]);
            for x in &masks[1..] {
                m.or_with(x);
            }
            let n = m.count_true();
            arena.recycle_mask(m);
            n
        }),
    );

    // --- full eval: scalar vs vectorized (dense + sparse) --------------
    let root = tree.root();
    let full = Bitmap::all_set(ROWS);
    let sparse = Bitmap::from_indices(ROWS, (0..ROWS).filter(|i| i % 16 == 0));
    report.push(
        "eval/scalar",
        time_ns(samples, || eval_node(&tree, root, &prov).unwrap().len()),
    );
    report.push(
        "eval/vectorized",
        time_ns(samples, || {
            let m = eval_node_mask(&tree, root, &prov, &full, &arena).unwrap();
            let n = m.count_true();
            arena.recycle_mask(m);
            n
        }),
    );
    report.push(
        "eval/vectorized_sparse",
        time_ns(samples, || {
            let m = eval_node_mask(&tree, root, &prov, &sparse, &arena).unwrap();
            let n = m.count_true();
            arena.recycle_mask(m);
            n
        }),
    );

    // --- Int compare kernel: branching vs branchless --------------------
    let cmp_col = int_column_with_nulls(7);
    let cmp_atom = Atom::Cmp {
        col: ColumnRef::new("t", "a"),
        op: CmpOp::Lt,
        value: Value::Int(500),
    };
    let cmp_data: Vec<i64> = cmp_col.as_ints().unwrap().to_vec();
    report.push(
        "cmp_int/branching",
        time_ns(samples, || {
            TruthMask::from_lanes(ROWS, |i| {
                if !cmp_col.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from(cmp_data[i] < 500)
                }
            })
            .count_true()
        }),
    );
    report.push(
        "cmp_int/branchless",
        time_ns(samples, || {
            let m = eval_atom_mask(&cmp_atom, &cmp_col, &full, &arena).unwrap();
            let n = m.count_true();
            arena.recycle_mask(m);
            n
        }),
    );

    // --- compressed columnar scan: zone-map skipping vs decoded ---------
    // The storage subsystem's acceptance workload: `a` is clustered by
    // position so the two range arms touch only the first and last
    // 1/64th of the table, and `b` never hits the probe literal. The
    // decoded scan runs compare kernels over every lane of every
    // morsel; the encoded scan consults per-morsel zone maps first and
    // fills whole word ranges for decided morsels, running the
    // compare-on-codes kernels only where the zones are inconclusive.
    // Same morsel walk, same arena, serial — the ratio isolates the
    // encoded-column layer.
    let scan_rows: usize = 1 << 20;
    let scan_n = scan_rows as i64;
    let col_a = Column::from_ints((0..scan_n).collect());
    let col_b = Column::from_ints((0..scan_n).map(|i| i % 977).collect());
    let scan_tree = PredicateTree::build(&or(vec![
        col("g", "a").lt(scan_n / 64),
        col("g", "a").ge(scan_n - scan_n / 64),
        col("g", "b").eq(-1i64),
    ]));
    let scan_root = scan_tree.root();
    let scan_sel = Bitmap::all_set(scan_rows);
    let scan_morsels = Morsel::split(scan_rows, 4096);
    let a_ref = ColumnRef::new("g", "a");
    let b_ref = ColumnRef::new("g", "b");
    let decoded_prov = MapProvider::new(scan_rows)
        .with(a_ref.clone(), col_a.clone())
        .with(b_ref.clone(), col_b.clone());
    let encoded_prov = MapProvider::new(scan_rows)
        .with_encoded(a_ref, col_a)
        .with_encoded(b_ref, col_b);
    let scan_expected = 2 * (scan_rows / 64);
    let scan_morsels_ref = &scan_morsels;
    let run_scan = |prov: &MapProvider, arena: &MaskArena| {
        let mut n = 0usize;
        for &m in scan_morsels_ref {
            let mask =
                eval_node_mask_morsel(&scan_tree, scan_root, prov, &scan_sel, arena, m).unwrap();
            n += mask.count_true();
            arena.recycle_mask(mask);
        }
        assert_eq!(n, scan_expected, "selective scan answer");
        n
    };
    report.push(
        "scan/decoded_selective",
        time_ns(samples, || run_scan(&decoded_prov, &arena)),
    );
    report.push(
        "scan/encoded_selective",
        time_ns(samples, || run_scan(&encoded_prov, &arena)),
    );
    // Skip ratio from one run on a fresh arena (the shared bench arena's
    // zone counters already carry every timing repetition).
    let zone_arena = MaskArena::new();
    run_scan(&encoded_prov, &zone_arena);
    let zs = zone_arena.stats();
    let zonemap_skip = zs.zone_skipped_morsels as f64
        / (zs.zone_skipped_morsels + zs.zone_scanned_morsels).max(1) as f64;
    println!(
        "    zone maps: {} atom-morsels skipped, {} scanned",
        zs.zone_skipped_morsels, zs.zone_scanned_morsels
    );

    // --- join-output gather: fresh scalar vs pooled word-parallel -------
    // Mirrors what `exec::combine` does per output column. Scalar = the
    // pre-pool implementation verbatim (fresh Vec + one-at-a-time
    // bounds-checked gather per column); kernel = pooled checkout +
    // 8-lane word-parallel gather (`gather_u32_into`), Arc round-trip
    // included. Four columns of 64k rows through a scattered half-density
    // selection, the shape of a join's output assembly.
    let src_cols: Vec<Vec<u32>> = (0..4u32)
        .map(|c| {
            (0..ROWS as u32)
                .map(|i| i.wrapping_mul(2_654_435_761).wrapping_add(c))
                .collect()
        })
        .collect();
    let sel: Vec<u32> = (0..(ROWS as u32) / 2)
        .map(|j| j.wrapping_mul(2_654_435_761) % ROWS as u32)
        .collect();
    report.push(
        "gather/fresh_scalar",
        time_ns(samples, || {
            let cols: Vec<std::sync::Arc<Vec<u32>>> = src_cols
                .iter()
                .map(|c| {
                    std::sync::Arc::new(sel.iter().map(|&i| c[i as usize]).collect::<Vec<u32>>())
                })
                .collect();
            cols.iter().map(|c| c.len()).sum()
        }),
    );
    report.push(
        "gather/pooled_kernel",
        time_ns(samples, || {
            let cols: Vec<std::sync::Arc<Vec<u32>>> = src_cols
                .iter()
                .map(|c| {
                    let mut out = arena.columns().checkout(sel.len());
                    basilisk_types::gather_u32_into(c, &sel, &mut out);
                    std::sync::Arc::new(out)
                })
                .collect();
            let n = cols.iter().map(|c| c.len()).sum();
            for c in cols {
                arena.columns().recycle(c);
            }
            n
        }),
    );

    // --- morsel-parallel scaling: 1 worker vs 4 workers ------------------
    // A tagged filter+join pipeline big enough to fan out (6 morsels per
    // side at the default 64k-row granularity): the paper's Query-1 shape
    // over 384k titles ⋈ 384k scores. Both sessions share warm arenas
    // (plan built once, executions repeated), so the ratio isolates the
    // scheduler, not allocator noise.
    let par_rows: i64 = 384 * 1024;
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..par_rows {
        b.push_row(vec![i.into(), (1900 + (i * 11) % 120).into()])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..par_rows {
        b.push_row(vec![
            // Scatter keys over a range slightly wider than the title
            // ids so the probe sees repeats *and* misses (dangling keys
            // beyond par_rows), not a best-case 1:1 join.
            ((i * 17) % (par_rows + 1000)).into(),
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let pipeline = || {
        Query::new(vec![
            ("t".into(), "title".into()),
            ("mi".into(), "scores".into()),
        ])
        .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt(7.0),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt(8.0),
            ]),
            col("t", "year").lt(1905i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
    };
    let time_pipeline = |workers: usize| {
        // 32k-row morsels: 12 tasks per operator over 384k rows, so 4
        // workers load-balance (the default 64k would leave 6 tasks — a
        // 4+2 split). Ignored by the 1-worker serial session.
        let session = QuerySession::new(&cat, pipeline())
            .unwrap()
            .with_workers(workers)
            .with_morsel_rows(32 * 1024);
        let plan = session.plan(PlannerKind::TCombined).unwrap();
        time_ns(samples, || session.execute(&plan).unwrap().count())
    };
    report.push("pipeline/serial_1worker", time_pipeline(1));
    report.push("pipeline/parallel_4workers", time_pipeline(4));

    // --- serving throughput: parse-plan-execute vs cached concurrent ----
    // The serving-loop regime the resident layer targets: many small
    // requests of one statement *shape* with varying literals. Baseline =
    // the pre-serve `Database::sql` behavior, parse + plan + execute per
    // request on one thread; serve = one resident `Server` (warm plan
    // cache, reusable contexts, shared worker pool) taking the same
    // requests from 4 client threads. Tables are planning-heavy relative
    // to execution (4k rows, 6-atom disjunction over a join), which is
    // exactly the shape where per-request planning is pure overhead.
    let serve_rows: i64 = 4 * 1024;
    let mut cat_srv = Catalog::new();
    let mut b = TableBuilder::new("stitle")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..serve_rows {
        b.push_row(vec![i.into(), (1900 + (i * 13) % 120).into()])
            .unwrap();
    }
    cat_srv.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("sscores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..serve_rows {
        b.push_row(vec![
            ((i * 7) % serve_rows).into(),
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    cat_srv.add_table(b.finish().unwrap()).unwrap();
    let serve_sql = |y1: i64, s1: f64, y2: i64| {
        format!(
            "SELECT t.id FROM stitle t JOIN sscores s ON t.id = s.movie_id \
             WHERE (t.year > {y1} AND s.score > {s1:.1}) \
             OR (t.year > {y2} AND s.score > 8.5) OR t.year < 1903"
        )
    };
    const SERVE_REQS: usize = 32;
    let requests: Vec<String> = (0..SERVE_REQS)
        .map(|i| serve_sql(1990 + (i % 8) as i64, 6.0 + (i % 4) as f64 / 2.0, 1960))
        .collect();
    // Baseline: every request parses and plans from scratch (serial, the
    // old Database::sql hot path).
    let requests_ref = &requests;
    report.push(
        "serve/parse_plan_execute",
        time_ns(samples.min(10), || {
            let mut rows = 0usize;
            for sql in requests_ref {
                let stmt = basilisk::parse_select(sql).unwrap();
                let session = QuerySession::new(&cat_srv, stmt.into_query())
                    .unwrap()
                    .with_workers(1);
                let plan = session.plan(PlannerKind::TCombined).unwrap();
                rows += session.execute(&plan).unwrap().count();
            }
            rows
        }),
    );
    // Serve: one resident server, 4 concurrent clients, cached plans.
    let server = std::sync::Arc::new(basilisk::Server::new(
        cat_srv.clone(),
        basilisk::ServerConfig::builder()
            .contexts(4)
            .workers(1)
            .build()
            .unwrap(),
    ));
    for sql in requests_ref {
        server.sql(sql).unwrap(); // warm the plan cache
    }
    report.push(
        "serve/cached_concurrent",
        time_ns(samples.min(10), || {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    let server = std::sync::Arc::clone(&server);
                    let requests = requests_ref.clone();
                    std::thread::spawn(move || {
                        let mut rows = 0usize;
                        for sql in requests
                            .iter()
                            .skip(c * (SERVE_REQS / 4))
                            .take(SERVE_REQS / 4)
                        {
                            rows += server.sql(sql).unwrap().row_count;
                        }
                        rows
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        }),
    );

    // --- tracing disabled-path overhead ----------------------------------
    // Request tracing is per-request opt-in; untraced requests must pay
    // only an `Option` check per recording site plus one slow-ring
    // threshold compare. Baseline = a server whose slow log is disabled
    // outright (threshold `u64::MAX`); candidate = the default
    // observability config (10ms threshold — never tripped by these
    // sub-ms cached statements). Same statements, same single worker,
    // serial submission on one thread, so the ratio isolates the
    // untraced bookkeeping. Gated as a ceiling (`trace_overhead_max`):
    // rising past it means the disabled path stopped being near-free.
    let trace_server = |threshold: u64| {
        let server = basilisk::Server::new(
            cat_srv.clone(),
            basilisk::ServerConfig::builder()
                .contexts(1)
                .workers(1)
                .slow_threshold_micros(threshold)
                .build()
                .unwrap(),
        );
        for sql in requests_ref {
            server.sql(sql).unwrap(); // warm the plan cache
        }
        server
    };
    let untraced_srv = trace_server(u64::MAX);
    report.push(
        "serve/untraced_baseline",
        time_ns(samples.min(10), || {
            requests_ref
                .iter()
                .map(|sql| untraced_srv.sql(sql).unwrap().row_count)
                .sum()
        }),
    );
    let default_obs_srv = trace_server(10_000);
    report.push(
        "serve/tracing_disabled",
        time_ns(samples.min(10), || {
            requests_ref
                .iter()
                .map(|sql| default_obs_srv.sql(sql).unwrap().row_count)
                .sum()
        }),
    );

    // --- interleaved parallel regions: shared vs exclusive admission ----
    // The multi-query scaling regime the region table targets: 16 clients
    // fire a mixed filter/join workload at a 4-worker server whose
    // statements fan out *narrow* regions (2 morsels at this table size),
    // so no single region can keep all four workers busy. With a
    // single-slot region table (`region_slots: Some(1)`, the old
    // exclusive-region admission) overlapping regions serialize and half
    // the pool idles; the default table lets regions from different
    // contexts interleave on the same workers. Same statements, same
    // worker count — the ratio isolates region admission.
    let inter_rows: i64 = 64 * 1024;
    let mut cat_int = Catalog::new();
    let mut b = TableBuilder::new("ititle")
        .column("id", DataType::Int)
        .column("year", DataType::Int)
        .column("votes", DataType::Int);
    for i in 0..inter_rows {
        b.push_row(vec![
            i.into(),
            (1900 + (i * 11) % 120).into(),
            ((i * 37) % 100_000).into(),
        ])
        .unwrap();
    }
    cat_int.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("iscores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..inter_rows {
        b.push_row(vec![
            ((i * 17) % (inter_rows + 1000)).into(),
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    cat_int.add_table(b.finish().unwrap()).unwrap();
    let filter_sql = |y: i64, v: i64| {
        format!(
            "SELECT t.id FROM ititle t WHERE (t.year > {y} AND t.votes > {v}) \
             OR (t.year < 1910 AND t.votes < 500) OR t.votes > 99000"
        )
    };
    let join_sql = |y: i64, s: f64| {
        format!(
            "SELECT t.id FROM ititle t JOIN iscores s ON t.id = s.movie_id \
             WHERE (t.year > {y} AND s.score > {s:.1}) OR t.year < 1905"
        )
    };
    const INT_CLIENTS: usize = 16;
    const INT_REQS: usize = 8; // per client per sample
    let mixed: Vec<String> = (0..INT_CLIENTS * INT_REQS)
        .map(|i| {
            if i % 2 == 0 {
                filter_sql(1960 + (i % 5) as i64, 40_000 + ((i % 3) * 1000) as i64)
            } else {
                join_sql(1970 + (i % 7) as i64, 6.0 + (i % 4) as f64 / 2.0)
            }
        })
        .collect();
    let make_server = |region_slots: Option<usize>| {
        let server = std::sync::Arc::new(basilisk::Server::new(cat_int.clone(), {
            let mut b = basilisk::ServerConfig::builder()
                .contexts(4)
                .workers(4)
                // 2 morsels per operator at 64k rows: narrow regions.
                .morsel_rows(32 * 1024);
            if let Some(slots) = region_slots {
                b = b.region_slots(slots);
            }
            b.build().unwrap()
        }));
        for sql in &mixed {
            server.sql(sql).unwrap(); // warm the plan cache
        }
        server
    };
    let mixed_ref = &mixed;
    let fan_out = |server: &std::sync::Arc<basilisk::Server>| {
        let handles: Vec<_> = (0..INT_CLIENTS)
            .map(|c| {
                let server = std::sync::Arc::clone(server);
                let reqs: Vec<String> = mixed_ref[c * INT_REQS..(c + 1) * INT_REQS].to_vec();
                std::thread::spawn(move || {
                    reqs.iter()
                        .map(|sql| server.sql(sql).unwrap().row_count)
                        .sum::<usize>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    };
    let exclusive = make_server(Some(1));
    report.push(
        "serve/exclusive_region_baseline",
        time_ns(samples.min(10), || fan_out(&exclusive)),
    );
    let s = exclusive.stats();
    println!(
        "    exclusive: {} regions, {} slot waits (mean {:?})",
        s.parallel_regions,
        s.region_waits,
        s.mean_region_wait()
    );
    let interleaved = make_server(None);
    report.push(
        "serve/interleaved_16clients",
        time_ns(samples.min(10), || fan_out(&interleaved)),
    );
    let s = interleaved.stats();
    println!(
        "    interleaved: {} regions, {} slot waits, {} concurrent peak",
        s.parallel_regions, s.region_waits, s.region_max_concurrent
    );

    // --- wire front end: loopback HTTP/JSON vs in-process dispatch ------
    // The same 32 cached statements through the same warm server, split
    // over 8 client threads; the only delta between the two entries is
    // the wire (TCP + HTTP framing + JSON encode/decode both ways), so
    // `net_overhead` is the front-end cost multiple. Client-observed
    // per-request latency is collected across every sample for the p99.
    // Both are gated as *ceilings* (`_max` keys in baseline.json): lower
    // is better, a rise past ceiling × (1 + tolerance) fails CI.
    report.push(
        "serve/in_process_baseline",
        time_ns(samples.min(10), || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|c| {
                        let server = &server;
                        scope.spawn(move || {
                            requests_ref
                                .iter()
                                .skip(c * (SERVE_REQS / 8))
                                .take(SERVE_REQS / 8)
                                .map(|sql| server.sql(sql).unwrap().row_count)
                                .sum::<usize>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
        }),
    );
    let listener = basilisk::Listener::bind(std::sync::Arc::clone(&server), "127.0.0.1:0")
        .expect("bind loopback listener");
    let addr = listener.local_addr();
    let mut wire_clients: Vec<basilisk::Client> = (0..8)
        .map(|c| {
            basilisk::Client::connect(addr)
                .expect("connect loopback client")
                .with_client_id(format!("bench-{c}"))
        })
        .collect();
    let net_latencies = std::sync::Mutex::new(Vec::<u64>::new());
    report.push(
        "net/loopback_8clients",
        time_ns(samples.min(10), || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = wire_clients
                    .iter_mut()
                    .enumerate()
                    .map(|(c, client)| {
                        let net_latencies = &net_latencies;
                        scope.spawn(move || {
                            let mut rows = 0usize;
                            let mut lats = Vec::with_capacity(SERVE_REQS / 8);
                            for sql in requests_ref
                                .iter()
                                .skip(c * (SERVE_REQS / 8))
                                .take(SERVE_REQS / 8)
                            {
                                let t = Instant::now();
                                rows += client.sql(sql).expect("wire sql").row_count;
                                lats.push(t.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            }
                            net_latencies.lock().unwrap().extend(lats);
                            rows
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
        }),
    );
    drop(wire_clients);
    drop(listener);
    let mut net_latencies = net_latencies.into_inner().unwrap();
    net_latencies.sort_unstable();
    let net_p99_micros = net_latencies[(net_latencies.len() - 1) * 99 / 100] as f64;

    // --- derived (gated) ratios -----------------------------------------
    let or_fold_speedup = report.get("or_fold/scalar") / report.get("or_fold/vectorized");
    let eval_speedup = report.get("eval/scalar") / report.get("eval/vectorized");
    let cmp_kernel_speedup = report.get("cmp_int/branching") / report.get("cmp_int/branchless");
    let gather_kernel_speedup =
        report.get("gather/fresh_scalar") / report.get("gather/pooled_kernel");
    let parallel_scaling =
        report.get("pipeline/serial_1worker") / report.get("pipeline/parallel_4workers");
    let serve_throughput =
        report.get("serve/parse_plan_execute") / report.get("serve/cached_concurrent");
    let region_interleaving =
        report.get("serve/exclusive_region_baseline") / report.get("serve/interleaved_16clients");
    let net_overhead =
        report.get("net/loopback_8clients") / report.get("serve/in_process_baseline");
    let trace_overhead =
        report.get("serve/tracing_disabled") / report.get("serve/untraced_baseline");
    let compressed_vs_decoded =
        report.get("scan/decoded_selective") / report.get("scan/encoded_selective");
    let or_fold_gelems = ROWS as f64 / report.get("or_fold/vectorized"); // elems/ns = Gelems/s
    let derived = vec![
        ("compressed_vs_decoded".to_string(), compressed_vs_decoded),
        ("zonemap_skip_selective".to_string(), zonemap_skip),
        ("or_fold_speedup".to_string(), or_fold_speedup),
        ("eval_speedup".to_string(), eval_speedup),
        ("cmp_kernel_speedup".to_string(), cmp_kernel_speedup),
        ("gather_kernel_speedup".to_string(), gather_kernel_speedup),
        ("parallel_scaling".to_string(), parallel_scaling),
        ("serve_throughput".to_string(), serve_throughput),
        ("region_interleaving".to_string(), region_interleaving),
        ("net_overhead".to_string(), net_overhead),
        ("net_p99_micros".to_string(), net_p99_micros),
        ("trace_overhead".to_string(), trace_overhead),
        ("or_fold_gelems_per_s".to_string(), or_fold_gelems),
    ];
    println!(
        "  compressed_vs_decoded {compressed_vs_decoded:.1}x (zone-map scan vs decoded kernels)"
    );
    println!(
        "  zonemap_skip_selective {:.2} (fraction of atom-morsels zone-decided)",
        zonemap_skip
    );
    println!("  or_fold_speedup      {or_fold_speedup:.1}x");
    println!("  eval_speedup         {eval_speedup:.1}x");
    println!("  cmp_kernel_speedup   {cmp_kernel_speedup:.1}x");
    println!("  gather_kernel_speedup {gather_kernel_speedup:.1}x");
    println!("  parallel_scaling     {parallel_scaling:.2}x (4 workers)");
    println!(
        "  serve_throughput     {serve_throughput:.2}x (cached concurrent vs parse-plan-execute)"
    );
    println!("  region_interleaving  {region_interleaving:.2}x (shared region table vs exclusive)");
    println!(
        "  net_overhead         {net_overhead:.2}x (loopback HTTP/JSON vs in-process, 8 clients)"
    );
    println!("  net_p99_micros       {net_p99_micros:.0} us (client-observed wire p99)");
    println!(
        "  trace_overhead       {trace_overhead:.3}x (default observability vs disabled slow log, untraced)"
    );

    std::fs::write(&out_path, report.to_json(&derived)).expect("write BENCH_eval.json");
    println!("wrote {out_path}");

    // --- regression gate -------------------------------------------------
    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    // The 4-worker scaling ratio only measures the scheduler when the
    // machine actually has ≥ 4 cores; on smaller boxes 4 workers just
    // timeslice one another and the ratio is oversubscription noise, so
    // the gate (not the measurement) is skipped there. GitHub's ubuntu
    // runners have 4 vCPUs, so CI always gates it.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut failed = false;
    for (key, measured) in [
        ("compressed_vs_decoded", compressed_vs_decoded),
        ("zonemap_skip_selective", zonemap_skip),
        ("or_fold_speedup", or_fold_speedup),
        ("cmp_kernel_speedup", cmp_kernel_speedup),
        ("gather_kernel_speedup", gather_kernel_speedup),
        ("parallel_scaling", parallel_scaling),
        ("serve_throughput", serve_throughput),
        ("region_interleaving", region_interleaving),
    ] {
        // The multi-worker/multi-client ratios only measure the code
        // (not timeslicing) on hosts with ≥ 4 cores: parallel_scaling
        // needs 4 workers, serve_throughput 4 concurrent clients, and
        // region_interleaving needs idle cores for the shared table to
        // fill that exclusive admission leaves empty.
        if matches!(
            key,
            "parallel_scaling" | "serve_throughput" | "region_interleaving"
        ) && cores < 4
        {
            println!("gate skipped: {key} = {measured:.2} (host has {cores} core(s), need 4)");
            continue;
        }
        let Some(floor) = json_number(&baseline, key) else {
            println!("baseline has no {key}; skipping");
            continue;
        };
        let allowed = floor * (1.0 - tolerance);
        if measured < allowed {
            eprintln!(
                "REGRESSION: {key} = {measured:.2} < {allowed:.2} \
                 (baseline {floor:.2} - {tolerance:.0}% tolerance)",
                tolerance = tolerance * 100.0
            );
            failed = true;
        } else {
            println!("gate ok: {key} = {measured:.2} (floor {allowed:.2})");
        }
    }
    // Ceiling gates: lower is better, the baseline key carries a `_max`
    // suffix, and a measurement above ceiling × (1 + tolerance) fails.
    // Both wire metrics need 8 genuinely concurrent clients, so the
    // gates follow the same < 4 cores skip rule as the ratio floors.
    for (key, measured) in [
        ("net_overhead", net_overhead),
        ("net_p99_micros", net_p99_micros),
        ("trace_overhead", trace_overhead),
    ] {
        // trace_overhead is serial on one worker thread, so it measures
        // the code on any host; only the wire metrics need 4 cores.
        if cores < 4 && key != "trace_overhead" {
            println!("gate skipped: {key} = {measured:.2} (host has {cores} core(s), need 4)");
            continue;
        }
        let ceiling_key = format!("{key}_max");
        let Some(ceiling) = json_number(&baseline, &ceiling_key) else {
            println!("baseline has no {ceiling_key}; skipping");
            continue;
        };
        let allowed = ceiling * (1.0 + tolerance);
        if measured > allowed {
            eprintln!(
                "REGRESSION: {key} = {measured:.2} > {allowed:.2} \
                 (baseline ceiling {ceiling:.2} + {tolerance:.0}% tolerance)",
                tolerance = tolerance * 100.0
            );
            failed = true;
        } else {
            println!("gate ok: {key} = {measured:.2} (ceiling {allowed:.2})");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
