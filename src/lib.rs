//! Workspace facade for the Basilisk tagged-execution reproduction.
//!
//! Re-exports the public API of the [`basilisk`] crate so examples and
//! integration tests can use a single import root.

#![forbid(unsafe_code)]

pub use basilisk::*;
