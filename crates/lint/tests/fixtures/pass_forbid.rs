// Fixture: crate root with the forbid attribute — `forbid-unsafe`
// stays quiet.

#![forbid(unsafe_code)]

pub fn entirely_safe() {}
