//! Fair admission: per-client lanes with deficit-round-robin dispatch.
//!
//! The PR-5 gate was a strict-FIFO ticket queue: every waiting request
//! was an OS thread parked on its own ticket number, and contexts were
//! granted in arrival order. Arrival order is exactly the property a
//! chatty client controls — four threads hammering the server from one
//! client take four out of every five grants — so the redesigned gate
//! queues *data*, not threads:
//!
//! * every request enqueues a **ticket** into the lane named by its
//!   [`Request::client`](crate::Request::client) tag (untagged traffic
//!   shares the anonymous `""` lane);
//! * whenever a context frees up (or arrives with free contexts), the
//!   thread holding the lock runs the **dispatcher**: a
//!   deficit-round-robin sweep over the non-empty lanes. Each visit adds
//!   [`QUANTUM`] to the lane's deficit and dispatches queued tickets
//!   while the deficit covers their [`Priority`](crate::Priority) cost
//!   (`High` = 1, `Normal` = 2, `Low` = 4) and a context is free;
//! * a dispatched ticket's context is *assigned to the ticket* (parked
//!   in a grant table), and the owning thread — whichever order the OS
//!   wakes waiters in — picks it up by ticket id.
//!
//! The result: a lane's throughput share depends only on the DRR sweep
//! (≈ one quantum per round while it has queued work), never on how many
//! threads or connections feed it. No lane can starve: every non-empty
//! lane accumulates deficit on every sweep, and the sweep always
//! progresses because deficits grow until the head ticket is covered.
//! Within one lane, tickets dispatch strictly in arrival order —
//! priorities shape bandwidth (cheaper tickets drain faster), they never
//! reorder a request behind a *later* one.
//!
//! Overload is a typed rejection, not a string: when admitting one more
//! request would exceed `queue_limit` (queued + executing), the gate
//! returns [`BasiliskError::Busy`] carrying the in-flight count and
//! queue depth at rejection time — the wire layer maps it to HTTP 503 +
//! `Retry-After`, in-process callers get `is_retryable() == true`.
//!
//! Lifecycle rule 1 ("context checkout is exclusive and always
//! returns") is unchanged: a granted context is handed back through
//! [`Admission::release`] on every path, which sweeps it before
//! re-shelving.

use std::collections::{HashMap, VecDeque};

// Locks come from the façade (lint-enforced): normal builds are the std
// originals, `--cfg basilisk_check` builds are schedule-instrumented.
use basilisk_types::sync::{Condvar, Mutex};
use std::time::Instant;

use basilisk_plan::ExecContext;
use basilisk_types::{BasiliskError, Result};

use crate::api::Priority;
use crate::stats::{LaneStats, StatsRecorder};

/// Deficit added to a lane per dispatcher visit. Equal to the cost of
/// one `Normal` dispatch, so a normal-priority lane dispatches exactly
/// one request per sweep round; `High` tickets (cost 1) drain two per
/// round, `Low` tickets (cost 4) one every other round.
pub const QUANTUM: u32 = 2;

/// One queued request: who to grant to, and what it costs.
struct Ticket {
    id: u64,
    cost: u32,
    enqueued_at: Instant,
}

/// One client's admission lane (created on first use, retained for its
/// counters — lanes are bounded by the number of distinct client tags).
struct Lane {
    client: String,
    queue: VecDeque<Ticket>,
    /// Deficit-round-robin balance, reset when the lane goes empty (an
    /// idle lane must not bank bandwidth).
    deficit: u32,
    admitted: u64,
    dispatched: u64,
    rejected: u64,
    max_depth: u64,
    wait_total_micros: u64,
}

impl Lane {
    fn new(client: &str) -> Lane {
        Lane {
            client: client.to_string(),
            queue: VecDeque::new(),
            deficit: 0,
            admitted: 0,
            dispatched: 0,
            rejected: 0,
            max_depth: 0,
            wait_total_micros: 0,
        }
    }
}

struct AdmissionState {
    free: Vec<ExecContext>,
    lanes: Vec<Lane>,
    lane_index: HashMap<String, usize>,
    /// Next lane the DRR sweep visits (round-robin cursor).
    cursor: usize,
    /// Requests currently holding a context.
    in_flight: usize,
    /// Tickets currently queued across all lanes.
    queued: usize,
    next_ticket: u64,
    /// Contexts assigned to dispatched tickets, awaiting pickup by the
    /// ticket's owner thread. Entries are transient (owner is already
    /// awake or being woken), so this stays tiny.
    grants: HashMap<u64, ExecContext>,
}

impl AdmissionState {
    fn lane_id(&mut self, client: &str) -> usize {
        if let Some(&i) = self.lane_index.get(client) {
            return i;
        }
        self.lanes.push(Lane::new(client));
        let i = self.lanes.len() - 1;
        self.lane_index.insert(client.to_string(), i);
        i
    }

    /// The DRR sweep: hand free contexts to queued tickets, fairest
    /// lane first. Runs under the state lock; callers notify after.
    fn dispatch(&mut self) {
        while !self.free.is_empty() && self.queued > 0 {
            // Find the next non-empty lane from the cursor.
            let n = self.lanes.len();
            let lane_id = (0..n)
                .map(|k| (self.cursor + k) % n)
                .find(|&i| !self.lanes[i].queue.is_empty())
                .expect("queued > 0 implies a non-empty lane");
            self.cursor = (lane_id + 1) % n;
            let lane = &mut self.lanes[lane_id];
            lane.deficit = lane.deficit.saturating_add(QUANTUM);
            while let Some(head) = lane.queue.front() {
                if head.cost > lane.deficit || self.free.is_empty() {
                    break;
                }
                let ticket = lane.queue.pop_front().expect("front was Some");
                lane.deficit -= ticket.cost;
                lane.dispatched += 1;
                lane.wait_total_micros += ticket
                    .enqueued_at
                    .elapsed()
                    .as_micros()
                    .min(u64::MAX as u128) as u64;
                let ctx = self.free.pop().expect("checked non-empty");
                self.grants.insert(ticket.id, ctx);
                self.queued -= 1;
                self.in_flight += 1;
            }
            if lane.queue.is_empty() {
                lane.deficit = 0;
            }
        }
    }
}

/// The fair admission gate + context pool (see the module docs).
pub struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    queue_limit: usize,
}

impl Admission {
    pub fn new(contexts: Vec<ExecContext>, queue_limit: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState {
                free: contexts,
                lanes: Vec::new(),
                lane_index: HashMap::new(),
                cursor: 0,
                in_flight: 0,
                queued: 0,
                next_ticket: 0,
                grants: HashMap::new(),
            }),
            cv: Condvar::new(),
            queue_limit: queue_limit.max(1),
        }
    }

    /// Admit one request into `client`'s lane and block until the DRR
    /// dispatcher assigns it a context. Returns the context and how long
    /// the ticket waited. Rejects with [`BasiliskError::Busy`] when the
    /// system (queued + executing) is at `queue_limit`.
    pub fn acquire(
        &self,
        client: &str,
        priority: Priority,
        stats: &StatsRecorder,
    ) -> Result<(ExecContext, std::time::Duration)> {
        let t0 = Instant::now();
        let mut st = self.state.lock().unwrap();
        if st.in_flight + st.queued >= self.queue_limit {
            let lane_id = st.lane_id(client);
            st.lanes[lane_id].rejected += 1;
            stats.rejected();
            return Err(BasiliskError::Busy {
                in_flight: st.in_flight,
                queue_depth: st.queued,
            });
        }
        let id = st.next_ticket;
        st.next_ticket += 1;
        let lane_id = st.lane_id(client);
        let lane = &mut st.lanes[lane_id];
        lane.admitted += 1;
        lane.queue.push_back(Ticket {
            id,
            cost: priority.cost(),
            enqueued_at: t0,
        });
        lane.max_depth = lane.max_depth.max(lane.queue.len() as u64);
        st.queued += 1;
        stats.enqueued();
        st.dispatch();
        // The dispatch above can only have granted tickets queued before
        // ours (free contexts imply an empty queue on entry), but wake
        // any parked owner rather than rely on that invariant.
        self.cv.notify_all();
        // Wait for the dispatcher (run by whichever thread releases a
        // context — or the line above) to park a context under our id.
        loop {
            if let Some(ctx) = st.grants.remove(&id) {
                // Other dispatched waiters may still be parked.
                self.cv.notify_all();
                return Ok((ctx, t0.elapsed()));
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Return a finished request's context (sweeping it first) and run
    /// the dispatcher for the next queued ticket.
    pub fn release(&self, ctx: ExecContext, stats: &StatsRecorder) {
        // Reclaim everything the finished request no longer references
        // before the context goes back on the shelf.
        ctx.sweep();
        let mut st = self.state.lock().unwrap();
        st.free.push(ctx);
        st.in_flight -= 1;
        stats.dequeued();
        st.dispatch();
        drop(st);
        self.cv.notify_all();
    }

    /// Visit every idle context (used by the leak check).
    pub fn with_free<R>(&self, f: impl FnMut(&ExecContext) -> R) -> Vec<R> {
        self.state.lock().unwrap().free.iter().map(f).collect()
    }

    /// Per-lane counter snapshot, sorted by client tag for determinism.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        let st = self.state.lock().unwrap();
        let mut lanes: Vec<LaneStats> = st
            .lanes
            .iter()
            .map(|l| LaneStats {
                client: l.client.clone(),
                admitted: l.admitted,
                dispatched: l.dispatched,
                rejected: l.rejected,
                depth: l.queue.len() as u64,
                max_depth: l.max_depth,
                wait_total_micros: l.wait_total_micros,
            })
            .collect();
        lanes.sort_by(|a, b| a.client.cmp(&b.client));
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_types::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn gate(contexts: usize, queue_limit: usize) -> Admission {
        Admission::new(
            (0..contexts).map(|_| ExecContext::new(1)).collect(),
            queue_limit,
        )
    }

    #[test]
    fn uncontended_acquire_grants_immediately() {
        let g = gate(2, 8);
        let stats = StatsRecorder::default();
        let (a, wait_a) = g.acquire("x", Priority::Normal, &stats).unwrap();
        let (b, _) = g.acquire("", Priority::Low, &stats).unwrap();
        assert!(wait_a < std::time::Duration::from_secs(1));
        g.release(a, &stats);
        g.release(b, &stats);
        let lanes = g.lane_stats();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.iter().all(|l| l.depth == 0));
        assert_eq!(lanes.iter().map(|l| l.dispatched).sum::<u64>(), 2);
    }

    #[test]
    fn overload_rejects_with_load_snapshot() {
        let g = gate(1, 1);
        let stats = StatsRecorder::default();
        let (held, _) = g.acquire("a", Priority::Normal, &stats).unwrap();
        match g.acquire("b", Priority::Normal, &stats) {
            Err(BasiliskError::Busy {
                in_flight,
                queue_depth,
            }) => {
                assert_eq!(in_flight, 1);
                assert_eq!(queue_depth, 0);
            }
            Err(other) => panic!("expected Busy, got {other:?}"),
            Ok(_) => panic!("expected Busy, got a grant"),
        }
        g.release(held, &stats);
        let lanes = g.lane_stats();
        assert_eq!(lanes.iter().map(|l| l.rejected).sum::<u64>(), 1);
        let b = lanes.iter().find(|l| l.client == "b").unwrap();
        assert_eq!((b.admitted, b.rejected), (0, 1));
    }

    /// Two lanes contending for one context: grants must alternate
    /// (deficit round-robin), not follow arrival order.
    #[test]
    fn lanes_share_one_context_fairly() {
        let g = Arc::new(gate(1, 64));
        let stats = Arc::new(StatsRecorder::default());
        let done = Arc::new(AtomicUsize::new(0));
        const PER: usize = 20;
        let handles: Vec<_> = ["a", "a", "a", "b"]
            .iter()
            .map(|client| {
                let g = Arc::clone(&g);
                let stats = Arc::clone(&stats);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        let (ctx, _) = g.acquire(client, Priority::Normal, &stats).unwrap();
                        g.release(ctx, &stats);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let lanes = g.lane_stats();
        let a = lanes.iter().find(|l| l.client == "a").unwrap();
        let b = lanes.iter().find(|l| l.client == "b").unwrap();
        assert_eq!(a.dispatched, 3 * PER as u64);
        assert_eq!(b.dispatched, PER as u64);
        assert_eq!(a.depth + b.depth, 0, "drained");
        assert!(a.max_depth >= 1, "lane a actually queued");
    }

    #[test]
    fn priority_costs_shape_dispatch_rate() {
        // Single-threaded structural check of the deficit arithmetic:
        // one lane of Low tickets needs two sweep visits per dispatch.
        let g = gate(1, 64);
        let stats = StatsRecorder::default();
        let (held, _) = g.acquire("x", Priority::Normal, &stats).unwrap();
        // Queue three Low tickets from background threads.
        let g = Arc::new(g);
        let stats = Arc::new(stats);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let g = Arc::clone(&g);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    let (ctx, wait) = g.acquire("low", Priority::Low, &stats).unwrap();
                    g.release(ctx, &stats);
                    wait
                })
            })
            .collect();
        // Let them enqueue, then free the context: the dispatcher must
        // drain all three (deficit accumulates across visits).
        while g.lane_stats().iter().map(|l| l.depth).sum::<u64>() < 3 {
            std::thread::yield_now();
        }
        g.release(held, &stats);
        for h in handles {
            h.join().unwrap();
        }
        let lanes = g.lane_stats();
        let low = lanes.iter().find(|l| l.client == "low").unwrap();
        assert_eq!(low.dispatched, 3);
        assert_eq!(low.depth, 0);
        assert!(low.wait_total_micros > 0, "queued tickets measured waits");
    }
}
