//! Column-oriented storage engine for Basilisk (§2.5 / §5 "System").
//!
//! The paper's system stores data on disk and reads it through a page cache:
//!
//! > "Data is stored on disk. When the data for a relational slice is
//! > needed, Basilisk consults the corresponding bitmap, and reads are done
//! > using direct I/O calls with a LFU page cache sitting in the middle.
//! > For bitmaps with low selectivity, only the relevant pages are read
//! > from disk. [...] for all bitmaps with a selectivity above a certain
//! > threshold, Basilisk instead reads the entire column sequentially, and
//! > values are selected in memory."
//!
//! This crate implements exactly that: typed in-memory [`Column`]s, a fixed
//! page on-disk format ([`DiskColumn`]), an **LFU** page cache
//! ([`LfuPageCache`]), and a [`ColumnHandle`] whose bitmap reads switch
//! between per-page random I/O and a sequential whole-column scan at a
//! configurable selectivity threshold. Tables can be fully in-memory (the
//! default for benchmarks, for determinism) or disk-backed (exercised by
//! tests and the I/O ablation bench).
//!
//! On top of the plain layout sits the **encoded** layer ([`EncodedColumn`],
//! [`ColumnHandle::Enc`]): dictionary-coded strings, frame-of-reference
//! bit-packed ints, and per-zone min/max/null statistics that let
//! evaluators prove whole word-aligned morsels all-true / all-false /
//! all-null without touching the payload. Encoding is chosen at
//! [`TableBuilder`] time and is invisible above the storage API.

#![forbid(unsafe_code)]

mod cache;
mod column;
mod disk;
mod encode;
mod table;

pub use cache::{CacheStats, LfuPageCache, PageKey};
pub use column::{Column, ColumnBuilder, ColumnData, StrData};
pub use disk::{DiskColumn, PAGE_SIZE};
pub use encode::{EncCmpOp, EncodedColumn, ZONE_ROWS};
pub use table::{ColumnHandle, Table, TableBuilder, DEFAULT_SEQ_SCAN_THRESHOLD};
