//! Schedule exploration for the basilisk concurrency protocols.
//!
//! This crate only does real work when the workspace is compiled with
//! `RUSTFLAGS="--cfg basilisk_check"`, which swaps the
//! [`basilisk_types::sync`] façade from plain `std::sync` re-exports to
//! an instrumented runtime: every lock, condvar wait and atomic op
//! becomes a *schedule point* where a seeded PRNG may inject a
//! preemption, lock acquisition order feeds a global cycle detector,
//! condvar waits carry a stall budget (missed-wakeup detection), and
//! pooled buffers are tagged with their producing arena so cross-arena
//! recycling trips an assertion.
//!
//! On top of that runtime, this crate defines **scenarios** — small
//! closed-loop workloads that drive the region-table protocol in
//! `basilisk-sched` (slot claim → publish → drain → last-worker-out
//! retirement) and the DRR admission gate in `basilisk-serve` (ticket
//! park → grant → sweep → return) — and an **explorer** that runs each
//! scenario under many seeds, converting any panic (a protocol
//! assertion, a lock-order cycle, a stall, an ownership violation) into
//! a `Finding` that names the scenario and the seed that produced it
//! (the type is only compiled — and documented — under the check cfg).
//!
//! The perturbation stream is a pure function of `(seed, thread name,
//! op index)`, so a failing seed replays the same decision pattern:
//!
//! ```text
//! RUSTFLAGS='--cfg basilisk_check' cargo run --release -p basilisk-check \
//!     --bin check_model -- --scenario region_table --seed 1234
//! ```
//!
//! In normal builds the façade is zero-cost aliases, this library is
//! empty, and the `check_model` binary exits with a pointer at the
//! required `RUSTFLAGS`.

#![forbid(unsafe_code)]

#[cfg(basilisk_check)]
mod explorer;
#[cfg(basilisk_check)]
pub mod scenarios;

#[cfg(basilisk_check)]
pub use explorer::{quiet_panics, run_corpus, run_seed, CorpusReport, Finding};
