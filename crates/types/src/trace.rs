//! Per-request tracing: a span tree recorded on the request thread, plus
//! the bounded slow-query ring the serving layer keeps recent traces in.
//!
//! A [`Tracer`] lives for the duration of one request and records
//! *spans* — named, timed intervals with integer/string attributes —
//! into a flat list with parent links ([`RefCell`]-cheap: the request
//! path is single-threaded; parallel workers never touch the tracer, the
//! coordinating thread records operator spans around its `run` calls).
//! [`Tracer::finish`] folds the list into one owned [`TraceSpan`] tree
//! (the implicit `request` root) that the serving layer attaches to the
//! response — an in-process `EXPLAIN ANALYZE`.
//!
//! Tracing is opt-in per request; the disabled path carries only an
//! `Option` check (pinned by the `trace_overhead_max` bench gate).
//!
//! [`SlowLog`] is the retention half: a fixed-capacity ring of
//! `Arc`-shared entries indexed by a monotonically increasing sequence
//! (façade atomics + one short per-slot mutex, so concurrent recorders
//! never contend on a global lock and a reader snapshots without
//! stopping writers).

use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};

/// An attribute value on a [`TraceSpan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceValue {
    Int(i64),
    Str(String),
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Int(v) => write!(f, "{v}"),
            TraceValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> TraceValue {
        TraceValue::Int(v)
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> TraceValue {
        TraceValue::Int(v.min(i64::MAX as u64) as i64)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> TraceValue {
        TraceValue::from(v as u64)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> TraceValue {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> TraceValue {
        TraceValue::Str(v)
    }
}

/// One finished span: a named interval (offsets relative to the start of
/// the traced request) with attributes and child spans. Children are
/// fully contained in their parent's interval by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    pub name: String,
    /// Microseconds from the start of the request to this span's start.
    pub start_micros: u64,
    pub duration_micros: u64,
    pub attrs: Vec<(String, TraceValue)>,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// The first direct child named `name`.
    pub fn child(&self, name: &str) -> Option<&TraceSpan> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Every span named `name` in this subtree (preorder, self included).
    pub fn descendants<'a>(&'a self, name: &str) -> Vec<&'a TraceSpan> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            if s.name == name {
                out.push(s);
            }
            for c in s.children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&TraceValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Integer attribute by key.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.attr(key) {
            Some(TraceValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// String attribute by key.
    pub fn str_attr(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(TraceValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// End offset of the interval, in microseconds from request start.
    pub fn end_micros(&self) -> u64 {
        self.start_micros + self.duration_micros
    }

    /// Whether every child interval nests within its parent, recursively
    /// — the well-formedness property the trace tests pin.
    pub fn is_well_formed(&self) -> bool {
        self.children.iter().all(|c| {
            c.start_micros >= self.start_micros
                && c.end_micros() <= self.end_micros()
                && c.is_well_formed()
        })
    }
}

/// Handle to an open span (see [`Tracer::begin`]); index into the
/// tracer's flat span list.
#[derive(Debug, Clone, Copy)]
pub struct SpanId(usize);

struct SpanRec {
    name: &'static str,
    parent: Option<usize>,
    start_micros: u64,
    duration_micros: Option<u64>,
    attrs: Vec<(&'static str, TraceValue)>,
}

struct TraceState {
    spans: Vec<SpanRec>,
    /// Open span indices, innermost last; `begin` parents under the top.
    open: Vec<usize>,
}

/// The per-request span recorder (see the module docs). Deliberately not
/// `Sync` — one request thread records; pass `Option<&Tracer>` down the
/// execution path and skip every call when `None`.
pub struct Tracer {
    t0: Instant,
    state: RefCell<TraceState>,
}

impl Tracer {
    /// Start tracing: opens the implicit `request` root span.
    pub fn new() -> Tracer {
        Tracer {
            t0: Instant::now(),
            state: RefCell::new(TraceState {
                spans: vec![SpanRec {
                    name: "request",
                    parent: None,
                    start_micros: 0,
                    duration_micros: None,
                    attrs: Vec::new(),
                }],
                open: vec![0],
            }),
        }
    }

    fn now_micros(&self) -> u64 {
        self.t0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Open a span under the innermost open span. Close it with
    /// [`Tracer::end`]; spans left open are closed by
    /// [`Tracer::finish`].
    pub fn begin(&self, name: &'static str) -> SpanId {
        let start = self.now_micros();
        let mut st = self.state.borrow_mut();
        let parent = st.open.last().copied();
        let idx = st.spans.len();
        st.spans.push(SpanRec {
            name,
            parent,
            start_micros: start,
            duration_micros: None,
            attrs: Vec::new(),
        });
        st.open.push(idx);
        SpanId(idx)
    }

    /// Close an open span (idempotent; closing out of order also closes
    /// any span opened after it, keeping intervals properly nested).
    pub fn end(&self, id: SpanId) {
        let now = self.now_micros();
        let mut st = self.state.borrow_mut();
        let Some(pos) = st.open.iter().rposition(|&i| i == id.0) else {
            return; // already closed
        };
        let closing: Vec<usize> = st.open.drain(pos..).collect();
        for i in closing {
            let rec = &mut st.spans[i];
            if rec.duration_micros.is_none() {
                rec.duration_micros = Some(now.saturating_sub(rec.start_micros));
            }
        }
    }

    /// Attach an attribute to a span (open or closed).
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<TraceValue>) {
        self.state.borrow_mut().spans[id.0]
            .attrs
            .push((key, value.into()));
    }

    /// Close everything and fold the records into the `request` span
    /// tree. Children appear in `begin` order.
    pub fn finish(self) -> TraceSpan {
        let now = self.now_micros();
        let mut st = self.state.into_inner();
        for rec in &mut st.spans {
            if rec.duration_micros.is_none() {
                rec.duration_micros = Some(now.saturating_sub(rec.start_micros));
            }
        }
        // Build leaves-last: children have larger indices than their
        // parent (begin() appends), so a reverse sweep can move each
        // node's finished subtree into its parent.
        let n = st.spans.len();
        let mut built: Vec<Option<TraceSpan>> = st
            .spans
            .iter()
            .map(|r| {
                Some(TraceSpan {
                    name: r.name.to_string(),
                    start_micros: r.start_micros,
                    duration_micros: r.duration_micros.unwrap_or(0),
                    attrs: r
                        .attrs
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                    children: Vec::new(),
                })
            })
            .collect();
        for i in (1..n).rev() {
            let parent = st.spans[i].parent.unwrap_or(0);
            let node = built[i].take().expect("unconsumed span");
            built[parent]
                .as_mut()
                .expect("parent precedes child")
                .children
                .push(node);
        }
        let mut root = built[0].take().expect("root span");
        // The reverse sweep pushed children in reverse begin order.
        fn reorder(s: &mut TraceSpan) {
            s.children.reverse();
            for c in &mut s.children {
                reorder(c);
            }
        }
        reorder(&mut root);
        root
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

/// A bounded ring of the most recent entries, each stamped with a
/// monotonically increasing sequence number (see the module docs). The
/// serving layer keeps one of `SlowQuery` entries; the type is generic
/// so the ring protocol itself is testable (and explorable by
/// `basilisk-check`) without serving machinery.
/// One ring slot: the entry's sequence number plus the entry itself.
type Slot<T> = Mutex<Option<(u64, Arc<T>)>>;

pub struct SlowLog<T> {
    head: AtomicU64,
    slots: Vec<Slot<T>>,
}

impl<T> SlowLog<T> {
    /// A ring keeping the last `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> SlowLog<T> {
        SlowLog {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total entries ever recorded (not the current ring occupancy).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record an entry, overwriting the oldest when full. Returns the
    /// entry's sequence number (0-based).
    pub fn push(&self, value: T) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // Two writers lapping each other race to one slot; keep the
        // newer entry regardless of arrival order.
        if guard.as_ref().is_none_or(|(s, _)| *s < seq) {
            *guard = Some((seq, Arc::new(value)));
        }
        seq
    }

    /// The current ring contents, newest first.
    pub fn snapshot(&self) -> Vec<(u64, Arc<T>)> {
        let mut out: Vec<(u64, Arc<T>)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_shape_and_order() {
        let t = Tracer::new();
        let parse = t.begin("parse");
        t.end(parse);
        let exec = t.begin("execute");
        let f = t.begin("filter");
        t.attr(f, "rows_in", 100u64);
        t.attr(f, "rows_out", 40u64);
        t.end(f);
        let j = t.begin("join");
        t.end(j);
        t.end(exec);
        let root = t.finish();
        assert_eq!(root.name, "request");
        assert_eq!(
            root.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["parse", "execute"]
        );
        let exec = root.child("execute").unwrap();
        assert_eq!(
            exec.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["filter", "join"]
        );
        let filter = exec.child("filter").unwrap();
        assert_eq!(filter.int("rows_in"), Some(100));
        assert_eq!(filter.int("rows_out"), Some(40));
        assert!(root.is_well_formed());
        assert_eq!(root.descendants("filter").len(), 1);
    }

    #[test]
    fn nesting_is_well_formed_under_real_delays() {
        let t = Tracer::new();
        let outer = t.begin("outer");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let inner = t.begin("inner");
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.end(inner);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.end(outer);
        let root = t.finish();
        assert!(root.is_well_formed());
        let outer = root.child("outer").unwrap();
        let inner = outer.child("inner").unwrap();
        assert!(inner.start_micros >= outer.start_micros);
        assert!(inner.end_micros() <= outer.end_micros());
        assert!(outer.duration_micros >= inner.duration_micros);
    }

    #[test]
    fn unclosed_and_misnested_spans_are_closed() {
        let t = Tracer::new();
        let a = t.begin("a");
        let b = t.begin("b");
        // Ending the outer span closes the inner one too.
        t.end(a);
        t.end(b); // idempotent no-op
        let leftover = t.begin("leftover");
        let _ = leftover; // left open; finish() closes it
        let root = t.finish();
        assert!(root.is_well_formed());
        let a = root.child("a").unwrap();
        assert!(a.child("b").is_some());
        assert!(root.child("leftover").is_some());
    }

    #[test]
    fn attrs_convert_and_render() {
        let t = Tracer::new();
        let s = t.begin("s");
        t.attr(s, "n", 7i64);
        t.attr(s, "big", u64::MAX);
        t.attr(s, "lane", "tenant-1");
        t.end(s);
        let root = t.finish();
        let s = root.child("s").unwrap();
        assert_eq!(s.int("n"), Some(7));
        assert_eq!(s.int("big"), Some(i64::MAX), "u64 saturates into i64");
        assert_eq!(s.str_attr("lane"), Some("tenant-1"));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.attr("lane").unwrap().to_string(), "tenant-1");
        assert_eq!(s.attr("n").unwrap().to_string(), "7");
    }

    #[test]
    fn slow_log_keeps_last_n_newest_first() {
        let log = SlowLog::new(3);
        for i in 0..7u64 {
            assert_eq!(log.push(i), i);
        }
        assert_eq!(log.recorded(), 7);
        assert_eq!(log.capacity(), 3);
        let snap = log.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 5, 4]);
        let values: Vec<u64> = snap.iter().map(|(_, v)| **v).collect();
        assert_eq!(values, vec![6, 5, 4]);
    }

    #[test]
    fn slow_log_concurrent_writers_stay_bounded() {
        let log = Arc::new(SlowLog::new(4));
        let mut handles = Vec::new();
        for w in 0..3u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    log.push(w * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.recorded(), 150);
        let snap = log.snapshot();
        assert!(snap.len() <= 4);
        // Sequence numbers are unique and come back newest first.
        for pair in snap.windows(2) {
            assert!(pair[0].0 > pair[1].0);
        }
    }

    #[test]
    fn slow_log_zero_capacity_clamps() {
        let log = SlowLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push("only");
        log.push("newer");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(*snap[0].1, "newer");
    }
}
