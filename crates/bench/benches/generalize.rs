//! Microbenchmark: `GeneralizeTag` (Algorithm 1) runs in O(n) in the
//! number of predicates — measured by generalizing tags over DNF predicate
//! trees of growing clause count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use basilisk_core::{generalize_tag, Tag};
use basilisk_expr::{and, col, or, Expr, PredicateTree};
use basilisk_types::Truth;

fn dnf_tree(clauses: usize) -> PredicateTree {
    let terms: Vec<Expr> = (0..clauses)
        .map(|i| {
            and(vec![
                col("t1", &format!("a{i}")).lt(0.2),
                col("t2", &format!("a{i}")).lt(0.2),
            ])
        })
        .collect();
    PredicateTree::build(&or(terms))
}

fn bench_generalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalize_tag");
    group.sample_size(30);
    for clauses in [2usize, 8, 32, 128] {
        let tree = dnf_tree(clauses);
        // Assign false to the first atom of every clause: every AND gets
        // falsified, the root collapses — the worst-case full propagation.
        let atoms = tree.atom_ids();
        let tag = Tag::from_pairs(
            atoms
                .iter()
                .step_by(2)
                .map(|&id| (id, Truth::False))
                .collect::<Vec<_>>(),
        );
        group.bench_with_input(
            BenchmarkId::new("full_collapse", clauses),
            &clauses,
            |b, _| {
                b.iter(|| {
                    let g = generalize_tag(&tree, &tag);
                    assert_eq!(g.len(), 1, "root=false");
                    g
                })
            },
        );
        // Partial: only one atom assigned (fringe stays tiny).
        let small = Tag::from_pairs([(atoms[0], Truth::False)]);
        group.bench_with_input(
            BenchmarkId::new("single_assignment", clauses),
            &clauses,
            |b, _| b.iter(|| generalize_tag(&tree, &small)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generalize);
criterion_main!(benches);
