// Fixture: unsafe block correctly documented — `safety-comment` stays quiet.

fn read_first(v: &[u32]) -> u32 {
    // SAFETY: the caller guarantees `v` is non-empty, so index 0 is in
    // bounds.
    unsafe { *v.get_unchecked(0) }
}
