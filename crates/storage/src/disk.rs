//! On-disk column files.
//!
//! Each column is one file: a fixed header, a page directory (the first row
//! number held by each data page — the structure the bitmap reader binary
//! searches to find "the relevant pages", §5), an optional validity bitmap,
//! then `PAGE_SIZE`-byte data pages. Fixed-width types pack values densely;
//! string pages carry a count, relative offsets, and a byte heap.
//!
//! Data pages are always fetched through the [`LfuPageCache`]; the header,
//! directory and validity section are read once at open.

use std::fs::File;
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use basilisk_types::{BasiliskError, Bitmap, DataType, Result};

use crate::cache::{LfuPageCache, PageKey};
use crate::column::{Column, ColumnData, StrData};
use crate::encode::{bits_for, pack_at, unpack_at};

/// Size of one data page in bytes.
pub const PAGE_SIZE: usize = 8192;

const MAGIC: u32 = 0xBA51_1150;
const VERSION: u16 = 2;
const HEADER_LEN: usize = 32;

/// Payload encoding of the data pages (header byte 20). Int columns are
/// frame-of-reference bit-packed per page — each page carries its own
/// reference and width, so a 12-bit-spread page costs 12 bits/row and
/// big-but-clustered tables take far fewer pages (and cache slots) than
/// the plain 8-byte layout.
const ENC_PLAIN: u8 = 0;
const ENC_FOR_INT: u8 = 1;

/// `[count u32][reference i64][width u8][pad ×3]` before the packed words.
const FOR_PAGE_HEADER: usize = 16;

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

fn dtype_code(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_code(c: u8) -> Result<DataType> {
    Ok(match c {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        other => {
            return Err(BasiliskError::Corrupt(format!(
                "unknown data type code {other}"
            )))
        }
    })
}

/// A disk-resident column opened for reading.
pub struct DiskColumn {
    file: File,
    file_id: u64,
    dtype: DataType,
    rows: usize,
    /// `page_first_row[p]` is the row number of the first value in page `p`;
    /// a trailing sentinel equal to `rows` simplifies range arithmetic.
    page_first_row: Vec<u64>,
    data_start: u64,
    encoding: u8,
    validity: Option<Bitmap>,
    cache: Arc<LfuPageCache>,
}

impl DiskColumn {
    /// Serialize `column` into the file at `path`.
    pub fn write(path: &Path, column: &Column) -> Result<()> {
        let mut pages: Vec<Vec<u8>> = Vec::new();
        let mut page_first_row: Vec<u64> = Vec::new();

        let encoding = match column.data() {
            ColumnData::Int(_) => ENC_FOR_INT,
            _ => ENC_PLAIN,
        };
        match column.data() {
            ColumnData::Int(v) => pack_for_ints(v, &mut pages, &mut page_first_row),
            ColumnData::Float(v) => pack_fixed(
                v.iter().map(|x| x.to_le_bytes()),
                &mut pages,
                &mut page_first_row,
            ),
            ColumnData::Bool(v) => pack_fixed(
                v.iter().map(|x| [*x as u8]),
                &mut pages,
                &mut page_first_row,
            ),
            ColumnData::Str(s) => pack_strings(s, &mut pages, &mut page_first_row)?,
        }

        let mut out: Vec<u8> = Vec::with_capacity(HEADER_LEN + pages.len() * PAGE_SIZE);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(dtype_code(column.data_type()));
        out.push(column.validity().is_some() as u8);
        out.extend_from_slice(&(column.len() as u64).to_le_bytes());
        out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        out.push(encoding);
        out.resize(HEADER_LEN, 0);

        for fr in &page_first_row {
            out.extend_from_slice(&fr.to_le_bytes());
        }
        if let Some(validity) = column.validity() {
            let mut byte = 0u8;
            for i in 0..column.len() {
                if validity.get(i) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if !column.len().is_multiple_of(8) {
                out.push(byte);
            }
        }
        // Align data pages to PAGE_SIZE so page reads are aligned.
        let data_start = out.len().div_ceil(PAGE_SIZE) * PAGE_SIZE;
        out.resize(data_start, 0);
        for page in &pages {
            debug_assert_eq!(page.len(), PAGE_SIZE);
            out.extend_from_slice(page);
        }

        let mut file = File::create(path)?;
        file.write_all(&out)?;
        file.sync_all()?;
        Ok(())
    }

    /// Open a column file for reading through `cache`.
    pub fn open(path: &Path, cache: Arc<LfuPageCache>) -> Result<DiskColumn> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if u32::from_le_bytes(header[0..4].try_into().unwrap()) != MAGIC {
            return Err(BasiliskError::Corrupt("bad magic".into()));
        }
        if u16::from_le_bytes(header[4..6].try_into().unwrap()) != VERSION {
            return Err(BasiliskError::Corrupt("unsupported version".into()));
        }
        let dtype = dtype_from_code(header[6])?;
        let has_validity = header[7] == 1;
        let rows = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let page_count = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        let encoding = header[20];
        match (encoding, dtype) {
            (ENC_PLAIN, _) | (ENC_FOR_INT, DataType::Int) => {}
            _ => {
                return Err(BasiliskError::Corrupt(format!(
                    "encoding {encoding} invalid for {dtype:?} column"
                )))
            }
        }

        let mut dir = vec![0u8; page_count * 8];
        file.read_exact(&mut dir)?;
        let mut page_first_row: Vec<u64> = dir
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if page_first_row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BasiliskError::Corrupt("page directory out of order".into()));
        }
        page_first_row.push(rows as u64);

        let validity = if has_validity {
            let mut bytes = vec![0u8; rows.div_ceil(8)];
            file.read_exact(&mut bytes)?;
            let mut bm = Bitmap::new(rows);
            for i in 0..rows {
                if bytes[i / 8] >> (i % 8) & 1 == 1 {
                    bm.set(i);
                }
            }
            Some(bm)
        } else {
            None
        };

        let meta_len =
            HEADER_LEN + page_count * 8 + if has_validity { rows.div_ceil(8) } else { 0 };
        let data_start = (meta_len.div_ceil(PAGE_SIZE) * PAGE_SIZE) as u64;

        Ok(DiskColumn {
            file,
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            dtype,
            rows,
            page_first_row,
            data_start,
            encoding,
            validity,
            cache,
        })
    }

    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    pub fn page_count(&self) -> usize {
        self.page_first_row.len() - 1
    }

    /// Sequentially read the whole column (one large read, bypassing the
    /// page cache — this is the paper's high-selectivity path where "values
    /// are selected in memory").
    pub fn scan(&self) -> Result<Column> {
        let n_pages = self.page_count();
        let mut buf = vec![0u8; n_pages * PAGE_SIZE];
        self.file.read_exact_at(&mut buf, self.data_start)?;
        let mut values = DecodedValues::with_capacity(self.dtype, self.rows);
        for p in 0..n_pages {
            let page = &buf[p * PAGE_SIZE..(p + 1) * PAGE_SIZE];
            let count = (self.page_first_row[p + 1] - self.page_first_row[p]) as usize;
            decode_page(self.dtype, self.encoding, page, count, &mut values)?;
        }
        Column::new(values.finish(), self.validity.clone())
    }

    /// Read only the rows whose bits are set, touching only their pages
    /// through the LFU cache (the paper's low-selectivity path).
    pub fn read_selected(&self, selection: &Bitmap) -> Result<Column> {
        if selection.len() != self.rows {
            return Err(BasiliskError::Exec(format!(
                "selection of length {} over column of {} rows",
                selection.len(),
                self.rows
            )));
        }
        let mut values = DecodedValues::with_capacity(self.dtype, selection.count_ones());
        let mut out_validity: Option<Bitmap> = self
            .validity
            .as_ref()
            .map(|_| Bitmap::all_set(selection.count_ones()));
        let mut out_idx = 0usize;
        let mut current_page: Option<(usize, Arc<Vec<u8>>, DecodedValues)> = None;
        #[allow(clippy::explicit_counter_loop)] // out_idx advances only on emit
        for row in selection.iter_ones() {
            let p = self.page_of_row(row);
            let needs_load = match &current_page {
                Some((cur, _, _)) => *cur != p,
                None => true,
            };
            if needs_load {
                if let Some((cur, page, _)) = current_page.take() {
                    let _ = (cur, page);
                }
                let page = self.read_page(p)?;
                let count = (self.page_first_row[p + 1] - self.page_first_row[p]) as usize;
                let mut decoded = DecodedValues::with_capacity(self.dtype, count);
                decode_page(self.dtype, self.encoding, &page, count, &mut decoded)?;
                current_page = Some((p, page, decoded));
            }
            let (_, _, decoded) = current_page.as_ref().unwrap();
            let in_page = row - self.page_first_row[p] as usize;
            values.copy_from(decoded, in_page);
            if let (Some(v), Some(out)) = (&self.validity, &mut out_validity) {
                if !v.get(row) {
                    out.clear(out_idx);
                }
            }
            out_idx += 1;
        }
        Column::new(values.finish(), out_validity)
    }

    /// Materialize arbitrary row indices (may repeat / be unsorted).
    pub fn gather(&self, rows: &[u32]) -> Result<Column> {
        let mut values = DecodedValues::with_capacity(self.dtype, rows.len());
        let mut out_validity: Option<Bitmap> =
            self.validity.as_ref().map(|_| Bitmap::all_set(rows.len()));
        for (j, &row) in rows.iter().enumerate() {
            let row = row as usize;
            if row >= self.rows {
                return Err(BasiliskError::Exec(format!(
                    "row {row} out of bounds ({} rows)",
                    self.rows
                )));
            }
            let p = self.page_of_row(row);
            let page = self.read_page(p)?;
            let count = (self.page_first_row[p + 1] - self.page_first_row[p]) as usize;
            let mut decoded = DecodedValues::with_capacity(self.dtype, count);
            decode_page(self.dtype, self.encoding, &page, count, &mut decoded)?;
            values.copy_from(&decoded, row - self.page_first_row[p] as usize);
            if let (Some(v), Some(out)) = (&self.validity, &mut out_validity) {
                if !v.get(row) {
                    out.clear(j);
                }
            }
        }
        Column::new(values.finish(), out_validity)
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    fn page_of_row(&self, row: usize) -> usize {
        match self.page_first_row.binary_search(&(row as u64)) {
            Ok(p) if p < self.page_count() => p,
            Ok(p) => p - 1,
            Err(p) => p - 1,
        }
    }

    fn read_page(&self, page_no: usize) -> Result<Arc<Vec<u8>>> {
        let key = PageKey {
            file_id: self.file_id,
            page_no: page_no as u32,
        };
        self.cache.get_or_load(key, || {
            let mut buf = vec![0u8; PAGE_SIZE];
            self.file.read_exact_at(
                &mut buf,
                self.data_start + (page_no as u64) * PAGE_SIZE as u64,
            )?;
            Ok::<_, BasiliskError>(buf)
        })
    }
}

/// Frame-of-reference pack ints into pages: each page greedily absorbs
/// values while `(count + 1) × width(max − min)` still fits, then stores
/// `[count u32][reference i64][width u8]` plus the packed deltas. Pages
/// self-describe, so clustered runs cost few bits and one outlier only
/// widens its own page.
fn pack_for_ints(v: &[i64], pages: &mut Vec<Vec<u8>>, page_first_row: &mut Vec<u64>) {
    let cap_bits = (PAGE_SIZE - FOR_PAGE_HEADER) * 8;
    let mut start = 0usize;
    while start < v.len() {
        let (mut min, mut max) = (v[start], v[start]);
        let mut end = start + 1;
        while end < v.len() {
            let nmin = min.min(v[end]);
            let nmax = max.max(v[end]);
            let w = bits_for(nmax.wrapping_sub(nmin) as u64) as usize;
            if (end - start + 1) * w > cap_bits {
                break;
            }
            (min, max) = (nmin, nmax);
            end += 1;
        }
        let count = end - start;
        let width = bits_for(max.wrapping_sub(min) as u64);
        let mut packed = vec![0u64; (count * width as usize).div_ceil(64)];
        for (i, &x) in v[start..end].iter().enumerate() {
            // x >= min, so the wrapping difference is the exact delta.
            pack_at(&mut packed, i, width, x.wrapping_sub(min) as u64);
        }
        let mut page = Vec::with_capacity(PAGE_SIZE);
        page.extend_from_slice(&(count as u32).to_le_bytes());
        page.extend_from_slice(&min.to_le_bytes());
        page.push(width as u8);
        page.resize(FOR_PAGE_HEADER, 0);
        for w64 in &packed {
            page.extend_from_slice(&w64.to_le_bytes());
        }
        page.resize(PAGE_SIZE, 0);
        page_first_row.push(start as u64);
        pages.push(page);
        start = end;
    }
}

/// Pack fixed-width encoded values into pages.
fn pack_fixed<const W: usize>(
    values: impl Iterator<Item = [u8; W]>,
    pages: &mut Vec<Vec<u8>>,
    page_first_row: &mut Vec<u64>,
) {
    let per_page = PAGE_SIZE / W;
    let mut row = 0u64;
    let mut page: Vec<u8> = Vec::with_capacity(PAGE_SIZE);
    #[allow(clippy::explicit_counter_loop)] // row is a u64 over an unsized iter
    for v in values {
        if page.is_empty() {
            page_first_row.push(row);
        }
        page.extend_from_slice(&v);
        row += 1;
        if page.len() / W == per_page {
            page.resize(PAGE_SIZE, 0);
            pages.push(std::mem::replace(&mut page, Vec::with_capacity(PAGE_SIZE)));
        }
    }
    if !page.is_empty() {
        page.resize(PAGE_SIZE, 0);
        pages.push(page);
    }
}

/// Pack strings into pages: `[count u32][abs offsets u32 × (count+1)][bytes]`.
/// Offsets are relative to the start of the byte heap within the page.
fn pack_strings(
    s: &StrData,
    pages: &mut Vec<Vec<u8>>,
    page_first_row: &mut Vec<u64>,
) -> Result<()> {
    let mut row = 0u64;
    let mut current: Vec<&str> = Vec::new();
    let mut current_bytes = 0usize;

    let flush = |current: &mut Vec<&str>, pages: &mut Vec<Vec<u8>>| {
        if current.is_empty() {
            return;
        }
        let mut page = Vec::with_capacity(PAGE_SIZE);
        page.extend_from_slice(&(current.len() as u32).to_le_bytes());
        let mut off = 0u32;
        page.extend_from_slice(&off.to_le_bytes());
        for st in current.iter() {
            off += st.len() as u32;
            page.extend_from_slice(&off.to_le_bytes());
        }
        for st in current.iter() {
            page.extend_from_slice(st.as_bytes());
        }
        page.resize(PAGE_SIZE, 0);
        pages.push(page);
        current.clear();
    };

    for i in 0..s.len() {
        let st = s.get(i);
        // header(4) + offsets((n+1+1)*4) + bytes
        let needed = 4 + (current.len() + 2) * 4 + current_bytes + st.len();
        if st.len() + 12 > PAGE_SIZE {
            return Err(BasiliskError::Corrupt(format!(
                "string of {} bytes exceeds page capacity",
                st.len()
            )));
        }
        if needed > PAGE_SIZE && !current.is_empty() {
            flush(&mut current, pages);
            current_bytes = 0;
        }
        if current.is_empty() {
            page_first_row.push(row);
        }
        current.push(st);
        current_bytes += st.len();
        row += 1;
    }
    flush(&mut current, pages);
    Ok(())
}

/// A growing, typed value buffer used while decoding pages.
enum DecodedValues {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(StrData),
    Bool(Vec<bool>),
}

impl DecodedValues {
    fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => DecodedValues::Int(Vec::with_capacity(cap)),
            DataType::Float => DecodedValues::Float(Vec::with_capacity(cap)),
            DataType::Str => DecodedValues::Str(StrData::with_capacity(cap, 0)),
            DataType::Bool => DecodedValues::Bool(Vec::with_capacity(cap)),
        }
    }

    fn copy_from(&mut self, other: &DecodedValues, idx: usize) {
        match (self, other) {
            (DecodedValues::Int(a), DecodedValues::Int(b)) => a.push(b[idx]),
            (DecodedValues::Float(a), DecodedValues::Float(b)) => a.push(b[idx]),
            (DecodedValues::Bool(a), DecodedValues::Bool(b)) => a.push(b[idx]),
            (DecodedValues::Str(a), DecodedValues::Str(b)) => a.push(b.get(idx)),
            _ => unreachable!("decoded value type mismatch"),
        }
    }

    fn finish(self) -> ColumnData {
        match self {
            DecodedValues::Int(v) => ColumnData::Int(v),
            DecodedValues::Float(v) => ColumnData::Float(v),
            DecodedValues::Str(s) => ColumnData::Str(s),
            DecodedValues::Bool(v) => ColumnData::Bool(v),
        }
    }
}

fn decode_page(
    dtype: DataType,
    encoding: u8,
    page: &[u8],
    count: usize,
    out: &mut DecodedValues,
) -> Result<()> {
    match (dtype, out) {
        (DataType::Int, DecodedValues::Int(v)) if encoding == ENC_FOR_INT => {
            let stored = u32::from_le_bytes(page[0..4].try_into().unwrap()) as usize;
            if stored != count {
                return Err(BasiliskError::Corrupt(format!(
                    "FOR page holds {stored} values, directory says {count}"
                )));
            }
            let reference = i64::from_le_bytes(page[4..12].try_into().unwrap());
            let width = page[12] as u32;
            let words = (count * width as usize).div_ceil(64);
            if width > 64 || FOR_PAGE_HEADER + words * 8 > page.len() {
                return Err(BasiliskError::Corrupt("FOR page header invalid".into()));
            }
            let packed: Vec<u64> = page[FOR_PAGE_HEADER..FOR_PAGE_HEADER + words * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for i in 0..count {
                v.push(reference.wrapping_add(unpack_at(&packed, i, width) as i64));
            }
        }
        (DataType::Int, DecodedValues::Int(v)) => {
            for c in page.chunks_exact(8).take(count) {
                v.push(i64::from_le_bytes(c.try_into().unwrap()));
            }
        }
        (DataType::Float, DecodedValues::Float(v)) => {
            for c in page.chunks_exact(8).take(count) {
                v.push(f64::from_le_bytes(c.try_into().unwrap()));
            }
        }
        (DataType::Bool, DecodedValues::Bool(v)) => {
            for &b in page.iter().take(count) {
                v.push(b != 0);
            }
        }
        (DataType::Str, DecodedValues::Str(s)) => {
            let stored = u32::from_le_bytes(page[0..4].try_into().unwrap()) as usize;
            if stored != count {
                return Err(BasiliskError::Corrupt(format!(
                    "string page holds {stored} values, directory says {count}"
                )));
            }
            let off_at = |i: usize| -> usize {
                u32::from_le_bytes(page[4 + i * 4..8 + i * 4].try_into().unwrap()) as usize
            };
            let heap_start = 4 + (count + 1) * 4;
            for i in 0..count {
                let lo = heap_start + off_at(i);
                let hi = heap_start + off_at(i + 1);
                if hi > page.len() || lo > hi {
                    return Err(BasiliskError::Corrupt("string page offsets invalid".into()));
                }
                let st = std::str::from_utf8(&page[lo..hi])
                    .map_err(|_| BasiliskError::Corrupt("string page not UTF-8".into()))?;
                s.push(st);
            }
        }
        _ => unreachable!("decoded value type mismatch"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use basilisk_types::Value;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "basilisk-disk-test-{}-{}",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn roundtrip(col: &Column) -> (DiskColumn, std::path::PathBuf) {
        let dir = tmpdir();
        let path = dir.join("c.col");
        DiskColumn::write(&path, col).unwrap();
        let cache = Arc::new(LfuPageCache::new(16));
        (DiskColumn::open(&path, cache).unwrap(), dir)
    }

    #[test]
    fn int_roundtrip_compresses_clustered_values() {
        let n = 3000; // would be 3 pages at 8 bytes/value
        let col = Column::from_ints((0..n).map(|i| i * 7 - 1000).collect());
        let (disk, _dir) = roundtrip(&col);
        assert_eq!(disk.len(), n as usize);
        assert_eq!(disk.data_type(), DataType::Int);
        assert!(
            disk.page_count() < 3,
            "15-bit deltas should beat the 1024-value plain pages, got {}",
            disk.page_count()
        );
        assert_eq!(disk.scan().unwrap(), col);
    }

    #[test]
    fn int_roundtrip_multi_page_wide_values() {
        // Full-width values: FOR packing degrades gracefully to ~64
        // bits/row and still round-trips across page boundaries.
        let n = 3000u64;
        let col = Column::from_ints(
            (0..n)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as i64)
                .collect(),
        );
        let (disk, _dir) = roundtrip(&col);
        assert!(disk.page_count() >= 3);
        assert_eq!(disk.scan().unwrap(), col);
        assert_eq!(disk.gather(&[2999, 0, 1500]).unwrap().as_ints().unwrap(), {
            let v = col.as_ints().unwrap();
            &[v[2999], v[0], v[1500]][..]
        });
    }

    #[test]
    fn int_extremes_roundtrip() {
        let col = Column::from_ints(vec![i64::MIN, i64::MAX, 0, -1, i64::MIN]);
        let (disk, _dir) = roundtrip(&col);
        assert_eq!(disk.scan().unwrap(), col);
    }

    #[test]
    fn float_and_bool_roundtrip() {
        let col = Column::from_floats((0..2500).map(|i| i as f64 * 0.25).collect());
        let (disk, _dir) = roundtrip(&col);
        assert_eq!(disk.scan().unwrap(), col);

        let col = Column::from_bools((0..9000).map(|i| i % 3 == 0).collect());
        let (disk, _dir) = roundtrip(&col);
        assert_eq!(disk.scan().unwrap(), col);
    }

    #[test]
    fn string_roundtrip_variable_lengths() {
        let strs: Vec<String> = (0..5000)
            .map(|i| "x".repeat(i % 97) + &i.to_string())
            .collect();
        let col = Column::from_strs(&strs);
        let (disk, _dir) = roundtrip(&col);
        assert!(disk.page_count() > 1);
        assert_eq!(disk.scan().unwrap(), col);
    }

    #[test]
    fn nulls_roundtrip() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..100 {
            if i % 7 == 0 {
                b.push(Value::Null).unwrap();
            } else {
                b.push(Value::Int(i)).unwrap();
            }
        }
        let col = b.finish();
        let (disk, _dir) = roundtrip(&col);
        let back = disk.scan().unwrap();
        assert_eq!(back, col);
        assert_eq!(back.null_count(), col.null_count());
    }

    #[test]
    fn read_selected_sparse() {
        let n = 5000usize;
        let col = Column::from_ints((0..n as i64).collect());
        let (disk, _dir) = roundtrip(&col);
        let sel = Bitmap::from_indices(n, [0usize, 1023, 1024, 4999]);
        let out = disk.read_selected(&sel).unwrap();
        assert_eq!(out.as_ints().unwrap(), &[0, 1023, 1024, 4999]);
    }

    #[test]
    fn read_selected_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Str);
        for i in 0..50 {
            if i % 5 == 0 {
                b.push(Value::Null).unwrap();
            } else {
                b.push(Value::from(format!("s{i}"))).unwrap();
            }
        }
        let (disk, _dir) = roundtrip(&b.finish());
        let sel = Bitmap::from_indices(50, [0usize, 1, 10, 11]);
        let out = disk.read_selected(&sel).unwrap();
        assert_eq!(out.value(0), Value::Null);
        assert_eq!(out.value(1), Value::from("s1"));
        assert_eq!(out.value(2), Value::Null);
        assert_eq!(out.value(3), Value::from("s11"));
    }

    #[test]
    fn gather_unsorted_with_repeats() {
        let col = Column::from_ints((0..3000).collect());
        let (disk, _dir) = roundtrip(&col);
        let out = disk.gather(&[2999, 0, 0, 1500]).unwrap();
        assert_eq!(out.as_ints().unwrap(), &[2999, 0, 0, 1500]);
        assert!(disk.gather(&[3000]).is_err());
    }

    #[test]
    fn sparse_reads_touch_few_pages() {
        let n = 1024 * 16; // 16 int pages
        let col = Column::from_ints((0..n as i64).collect());
        let dir = tmpdir();
        let path = dir.join("c.col");
        DiskColumn::write(&path, &col).unwrap();
        let cache = Arc::new(LfuPageCache::new(64));
        let disk = DiskColumn::open(&path, Arc::clone(&cache)).unwrap();
        let sel = Bitmap::from_indices(n, [5usize, 6, 7]); // all in page 0
        disk.read_selected(&sel).unwrap();
        assert_eq!(cache.stats().misses, 1, "only one page should be read");
        disk.read_selected(&sel).unwrap();
        assert_eq!(cache.stats().hits, 1, "second read is a cache hit");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = tmpdir();
        let path = dir.join("bad.col");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let cache = Arc::new(LfuPageCache::new(4));
        assert!(DiskColumn::open(&path, cache).is_err());
    }

    #[test]
    fn empty_column_roundtrip() {
        let col = Column::from_ints(vec![]);
        let (disk, _dir) = roundtrip(&col);
        assert_eq!(disk.len(), 0);
        assert!(disk.is_empty());
        assert_eq!(disk.scan().unwrap().len(), 0);
    }
}
