//! Session-level differential suite: a `QuerySession` in parallel mode
//! (workers > 1, small morsels so every operator really fans out) must
//! produce results identical to the serial session, for every planner
//! family — tagged filter pipelines, tagged joins, traditional
//! pipelines and union (BDisj) plans — plus empty tables, steady-state
//! allocation freedom of the *session* arena in parallel mode, and
//! plan-time/eval-time error paths.

use basilisk_catalog::Catalog;
use basilisk_expr::{and, col, or, ColumnRef};
use basilisk_plan::{Plan, PlannerKind, Query, QuerySession};
use basilisk_storage::TableBuilder;
use basilisk_types::{DataType, Value};

const TITLE_ROWS: i64 = 5000; // ≫ the 256-row test morsel, ragged tail
const SCORE_ROWS: i64 = 7000;

fn catalog(with_nulls: bool) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    for i in 0..TITLE_ROWS {
        let year = if with_nulls && i % 37 == 0 {
            Value::Null
        } else {
            Value::Int(1900 + (i * 11) % 120)
        };
        b.push_row(vec![i.into(), year]).unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..SCORE_ROWS {
        b.push_row(vec![
            (i % (TITLE_ROWS + 100)).into(),
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    cat.add_table(b.finish().unwrap()).unwrap();
    cat
}

fn join_query() -> Query {
    Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"))
    .filter(or(vec![
        and(vec![
            col("t", "year").gt(2000i64),
            col("mi", "score").gt(7.0),
        ]),
        and(vec![
            col("t", "year").gt(1980i64),
            col("mi", "score").gt(8.0),
        ]),
        col("t", "year").lt(1905i64),
    ]))
    .select(vec![ColumnRef::new("t", "id")])
}

fn filter_query() -> Query {
    Query::new(vec![("t".into(), "title".into())])
        .filter(or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("t", "id").lt(4000i64),
            ]),
            and(vec![
                col("t", "year").lt(1950i64),
                col("t", "id").gt(500i64),
            ]),
            col("t", "year").eq(1980i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")])
}

const PLANNERS: [PlannerKind; 5] = [
    PlannerKind::TPushdown,
    PlannerKind::TCombined,
    PlannerKind::TPullup,
    PlannerKind::BDisj,
    PlannerKind::BPushConj,
];

fn differential(query: fn() -> Query, with_nulls: bool) {
    let cat = catalog(with_nulls);
    for kind in PLANNERS {
        let serial = QuerySession::new(&cat, query()).unwrap().with_workers(1);
        let reference = serial
            .execute(&serial.plan(kind).unwrap())
            .unwrap()
            .canonical_tuples();
        for workers in [2, 3, 8] {
            let session = QuerySession::new(&cat, query())
                .unwrap()
                .with_workers(workers)
                .with_morsel_rows(256);
            let plan = session.plan(kind).unwrap();
            let out = session.execute(&plan).unwrap().canonical_tuples();
            assert_eq!(
                out, reference,
                "{kind} with {workers} workers diverged from serial"
            );
            assert_eq!(session.scheduler().outstanding(), 0);
            assert_eq!(session.arena().outstanding(), 0);
        }
    }
}

#[test]
fn join_pipelines_parallel_equals_serial_all_planners() {
    differential(join_query, false);
}

#[test]
fn filter_pipelines_parallel_equals_serial_all_planners() {
    differential(filter_query, false);
}

/// NULL-bearing data: the three-valued splits must route identically.
#[test]
fn three_valued_parallel_equals_serial() {
    differential(join_query, true);
    differential(filter_query, true);
}

/// Parallel mode must also reach steady state on the **session** arena:
/// stitched masks, split bitmaps, concatenated selection vectors and
/// output columns are deterministic shapes, so the second execution is
/// allocation-free there. (Worker arenas converge per worker but task
/// assignment is nondeterministic, so only the session arena is pinned.)
#[test]
fn parallel_steady_state_session_arena_allocation_free() {
    let cat = catalog(false);
    for kind in [PlannerKind::TCombined, PlannerKind::BDisj] {
        let session = QuerySession::new(&cat, join_query())
            .unwrap()
            .with_workers(4)
            .with_morsel_rows(256);
        let plan = session.plan(kind).unwrap();
        let first = session.execute(&plan).unwrap().canonical_tuples();
        assert!(session.arena_stats().fresh() > 0, "warmup populates pools");
        // Deferred result columns re-enter the pool one run after their
        // output is dropped, which can shift greedy best-fit matching
        // once — so the pool may take a second warmup run to reach its
        // fixpoint. It must then *stay* allocation-free.
        session.reset_arena_stats();
        let second = session.execute(&plan).unwrap().canonical_tuples();
        assert_eq!(first, second);
        for run in 0..3 {
            session.reset_arena_stats();
            let again = session.execute(&plan).unwrap().canonical_tuples();
            assert_eq!(again, first);
            assert_eq!(
                session.arena_stats().fresh(),
                0,
                "{kind} run {run}: parallel steady state must not allocate \
                 on the session arena"
            );
        }
    }
}

/// Projection value columns are pooled and deferred: a serving loop that
/// projects and releases reaches `fresh() == 0` including the value
/// pool; held results stay intact.
#[test]
fn projection_value_columns_reach_steady_state() {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, join_query())
        .unwrap()
        .with_workers(1);
    let plan = session.plan(PlannerKind::TCombined).unwrap();
    let serve = || {
        let out = session.execute(&plan).unwrap();
        let cols = session.project(&out).unwrap();
        assert_eq!(cols.len(), 1);
        cols[0].1.len()
    };
    let n = serve();
    assert!(n > 0);
    session.reset_arena_stats();
    assert_eq!(serve(), n);
    let stats = session.arena_stats();
    assert_eq!(
        stats.fresh(),
        0,
        "projection must be allocation-free in steady state (stats: {stats:?})"
    );
    assert!(stats.values.reused > 0, "value buffers were pooled");

    // Held projections are not corrupted by later executions.
    let out = session.execute(&plan).unwrap();
    let held = session.project(&out).unwrap();
    let snapshot: Vec<i64> = held[0].1.as_ints().unwrap().to_vec();
    session.execute(&plan).unwrap();
    session.execute(&plan).unwrap();
    assert_eq!(held[0].1.as_ints().unwrap(), &snapshot[..]);
}

/// Zero-row tables through a fully parallel session.
#[test]
fn empty_tables_parallel() {
    let mut cat = Catalog::new();
    let b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int);
    cat.add_table(b.finish().unwrap()).unwrap();
    let b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    cat.add_table(b.finish().unwrap()).unwrap();
    for kind in PLANNERS {
        let session = QuerySession::new(&cat, join_query())
            .unwrap()
            .with_workers(4)
            .with_morsel_rows(64);
        let out = session.execute(&session.plan(kind).unwrap()).unwrap();
        assert_eq!(out.count(), 0, "{kind} on empty tables");
        assert_eq!(session.scheduler().outstanding(), 0);
    }
}

/// Plan-shaped error paths in parallel mode: a broken predicate fails
/// cleanly (here at plan/validate time — eval-time failures are pinned
/// at operator level in `core/tests/parallel_ops.rs`) and the session
/// keeps serving afterwards with no stranded buffers.
#[test]
fn error_then_recovery_parallel() {
    let cat = catalog(false);
    // A predicate over a missing column builds a session (statistics
    // lookups are lazy) but must fail by execution time — cleanly, with
    // nothing stranded in any arena.
    let bad = Query::new(vec![("t".into(), "title".into())])
        .filter(and(vec![
            col("t", "year").gt(0i64),
            col("t", "no_such_column").gt(0i64),
        ]))
        .select(vec![ColumnRef::new("t", "id")]);
    if let Ok(bad_session) = QuerySession::new(&cat, bad) {
        let bad_session = bad_session.with_workers(4).with_morsel_rows(256);
        let failed = bad_session
            .plan(PlannerKind::TPushdown)
            .and_then(|p| bad_session.execute(&p).map(|_| ()));
        assert!(failed.is_err(), "missing column must fail by execution");
        assert_eq!(bad_session.scheduler().outstanding(), 0);
        assert_eq!(bad_session.arena().outstanding(), 0);
    }

    let session = QuerySession::new(&cat, filter_query())
        .unwrap()
        .with_workers(4)
        .with_morsel_rows(256);
    let plan = session.plan(PlannerKind::TCombined).unwrap();
    let out = session.execute(&plan).unwrap();
    assert!(out.count() > 0);
    assert_eq!(session.scheduler().outstanding(), 0);
    // Result index columns are *parked* (deferred), not outstanding.
    assert_eq!(session.arena().outstanding(), 0);
    drop(out);
    session.execute(&plan).unwrap();
}

/// `with_workers(1)` is the serial engine, and a workers=1 session says
/// so through its accessors.
#[test]
fn workers_one_is_serial() {
    let cat = catalog(false);
    let session = QuerySession::new(&cat, filter_query())
        .unwrap()
        .with_workers(1);
    assert_eq!(session.workers(), 1);
    let plan = session.plan(PlannerKind::TPushdown).unwrap();
    session.execute(&plan).unwrap();
    assert_eq!(
        session.scheduler().fresh(),
        0,
        "serial execution must never touch worker arenas"
    );
}

/// Join-only (no predicate) plans in parallel mode.
#[test]
fn join_only_parallel() {
    let cat = catalog(false);
    let q = Query::new(vec![
        ("t".into(), "title".into()),
        ("mi".into(), "scores".into()),
    ])
    .join(ColumnRef::new("t", "id"), ColumnRef::new("mi", "movie_id"));
    let serial = QuerySession::new(&cat, q.clone()).unwrap().with_workers(1);
    let reference = serial
        .execute(&serial.plan(PlannerKind::TCombined).unwrap())
        .unwrap()
        .canonical_tuples();
    let parallel = QuerySession::new(&cat, q)
        .unwrap()
        .with_workers(4)
        .with_morsel_rows(256);
    let plan: Plan = parallel.plan(PlannerKind::TCombined).unwrap();
    assert_eq!(
        parallel.execute(&plan).unwrap().canonical_tuples(),
        reference
    );
}
