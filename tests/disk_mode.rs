//! Disk-resident execution: the same queries over tables saved to the
//! paged on-disk format and read back through the LFU cache must return
//! identical results, with the cache actually being exercised.

use std::sync::Arc;

use basilisk::{Catalog, LfuPageCache, PlannerKind, QuerySession, Table};
use basilisk_workload::{dnf_query, generate_synthetic, SyntheticConfig};

#[test]
fn disk_equals_memory_and_cache_is_used() {
    let cfg = SyntheticConfig {
        rows: 3_000,
        num_attrs: 3,
        zipf_shape: 1.5,
        seed: 31,
    };
    let tables = generate_synthetic(&cfg).unwrap();

    let dir = std::env::temp_dir().join(format!("basilisk-diskmode-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for t in &tables {
        t.save(&dir.join(t.name())).unwrap();
    }

    let mut mem = Catalog::new();
    for t in &tables {
        mem.add_table(t.clone()).unwrap();
    }
    // Small cache to force evictions.
    let cache = Arc::new(LfuPageCache::new(8));
    let mut disk = Catalog::new();
    for t in &tables {
        disk.add_table(Table::load(&dir.join(t.name()), Arc::clone(&cache)).unwrap())
            .unwrap();
    }

    let q = dnf_query(2, 0.3, None);
    let s_mem = QuerySession::new(&mem, q.clone()).unwrap();
    let s_disk = QuerySession::new(&disk, q).unwrap();
    for kind in [PlannerKind::TCombined, PlannerKind::BDisj] {
        let a = s_mem
            .execute(&s_mem.plan(kind).unwrap())
            .unwrap()
            .canonical_tuples();
        let b = s_disk
            .execute(&s_disk.plan(kind).unwrap())
            .unwrap()
            .canonical_tuples();
        assert_eq!(a, b, "disk and memory diverge under {kind}");
        assert!(!a.is_empty());
    }
    let stats = cache.stats();
    assert!(stats.misses > 0, "pages were read from disk");
    assert!(stats.evictions > 0, "the 8-page cache must evict");
    std::fs::remove_dir_all(&dir).unwrap();
}
