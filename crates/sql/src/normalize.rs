//! Literal → parameter normalization for prepared statements.
//!
//! The serving layer caches plans keyed by a statement's **shape**: the
//! SQL text with every predicate literal replaced by an ordinal
//! placeholder (`?1`, `?2`, …). Two statements that differ only in their
//! literal values — the overwhelmingly common case in a serving loop —
//! normalize to the same key, so the second one skips parsing and
//! planning entirely and just binds its extracted literals into the
//! cached template.
//!
//! Parameter order is the **pre-order walk** of the parsed predicate:
//! OR/AND children left to right, through NOT, and within an atom the
//! comparison value, the LIKE pattern, or the IN-list values in list
//! order. [`extract_params`] and [`bind_params`] share that walk, so
//! extraction at normalize time and substitution at execute time can
//! never disagree about which literal is `?n`.
//!
//! Only *predicate* literals are parameterized. `LIMIT` (and the
//! projection, table list and join conditions) stay in the key: they
//! change the plan's shape, not just its constants. IN-list arity is
//! likewise part of the key (`IN (?1, ?2)` ≠ `IN (?1, ?2, ?3)`).

use std::fmt::Write as _;

use basilisk_expr::{Atom, Expr};
use basilisk_types::{BasiliskError, Result, Value};

use crate::parser::{parse_select, Projection, SelectStmt};

/// A parsed statement together with its parameterized cache key and the
/// literal values extracted from the predicate (in `?n` order).
pub struct NormalizedStatement {
    /// Canonical parameterized text — the plan-cache key. Not meant to be
    /// re-parsed; it is a stable fingerprint of the statement's shape.
    pub key: String,
    /// The parsed statement, literals still in place (they become the
    /// template's prepare-time values).
    pub stmt: SelectStmt,
    /// The extracted predicate literals, `params[i]` ↔ placeholder
    /// `?i+1`.
    pub params: Vec<Value>,
}

/// Parse `sql` and normalize it (see the module docs).
pub fn normalize_select(sql: &str) -> Result<NormalizedStatement> {
    let stmt = parse_select(sql)?;
    let (key, params) = statement_key(&stmt);
    Ok(NormalizedStatement { key, stmt, params })
}

/// The parameterized cache key of a parsed statement, plus its extracted
/// predicate literals in placeholder order.
pub fn statement_key(stmt: &SelectStmt) -> (String, Vec<Value>) {
    let mut key = String::from("SELECT ");
    match &stmt.projection {
        Projection::Star => key.push('*'),
        Projection::Count => key.push_str("COUNT(*)"),
        Projection::Columns(cols) => {
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    key.push_str(", ");
                }
                let _ = write!(key, "{c}");
            }
        }
    }
    key.push_str(" FROM ");
    for (i, (alias, table)) in stmt.tables.iter().enumerate() {
        if i > 0 {
            key.push_str(", ");
        }
        let _ = write!(key, "{table} AS {alias}");
    }
    for (l, r) in &stmt.joins {
        let _ = write!(key, " JOIN ON {l} = {r}");
    }
    let mut params = Vec::new();
    if let Some(pred) = &stmt.predicate {
        key.push_str(" WHERE ");
        render_parameterized(pred, &mut key, &mut params);
    }
    if let Some(l) = stmt.limit {
        let _ = write!(key, " LIMIT {l}");
    }
    (key, params)
}

/// Append `expr` to `out` with every literal replaced by `?n`, pushing
/// the literal values onto `params` in placeholder order. Connectives are
/// fully parenthesized — the key never needs precedence to round-trip.
fn render_parameterized(expr: &Expr, out: &mut String, params: &mut Vec<Value>) {
    match expr {
        Expr::And(cs) | Expr::Or(cs) => {
            let sep = if matches!(expr, Expr::And(_)) {
                " AND "
            } else {
                " OR "
            };
            out.push('(');
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push_str(sep);
                }
                render_parameterized(c, out, params);
            }
            out.push(')');
        }
        Expr::Not(c) => {
            out.push_str("(NOT ");
            render_parameterized(c, out, params);
            out.push(')');
        }
        Expr::Atom(a) => match a {
            Atom::Cmp { col, op, value } => {
                params.push(value.clone());
                let _ = write!(out, "{col} {} ?{}", op.symbol(), params.len());
            }
            Atom::Like {
                col,
                pattern,
                case_insensitive,
            } => {
                params.push(Value::Str(pattern.clone()));
                let _ = write!(
                    out,
                    "{col} {} ?{}",
                    if *case_insensitive { "ILIKE" } else { "LIKE" },
                    params.len()
                );
            }
            Atom::IsNull { col } => {
                let _ = write!(out, "{col} IS NULL");
            }
            Atom::InList { col, values } => {
                let _ = write!(out, "{col} IN (");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    params.push(v.clone());
                    let _ = write!(out, "?{}", params.len());
                }
                out.push(')');
            }
        },
    }
}

/// The predicate's literal values in placeholder order — what a raw
/// statement binds when it hits a cached template.
pub fn extract_params(expr: &Expr) -> Vec<Value> {
    let mut out = String::new();
    let mut params = Vec::new();
    render_parameterized(expr, &mut out, &mut params);
    params
}

/// Number of parameters a predicate exposes.
pub fn count_params(expr: &Expr) -> usize {
    extract_params(expr).len()
}

/// Rebuild `expr` with its literals replaced by `params`, in the same
/// walk order [`extract_params`] uses. Errors when the arity disagrees,
/// or when a LIKE pattern is bound to a non-string value.
pub fn bind_params(expr: &Expr, params: &[Value]) -> Result<Expr> {
    let mut iter = params.iter();
    let bound = bind_walk(expr, &mut iter)?;
    let leftover = iter.count();
    if leftover != 0 {
        return Err(BasiliskError::Plan(format!(
            "statement takes {} parameter(s), {} supplied",
            params.len() - leftover,
            params.len()
        )));
    }
    Ok(bound)
}

fn bind_walk<'a>(expr: &Expr, params: &mut impl Iterator<Item = &'a Value>) -> Result<Expr> {
    let mut next = |what: &str| -> Result<Value> {
        params
            .next()
            .cloned()
            .ok_or_else(|| BasiliskError::Plan(format!("missing parameter for {what}")))
    };
    Ok(match expr {
        Expr::And(cs) => Expr::And(
            cs.iter()
                .map(|c| bind_walk(c, params))
                .collect::<Result<_>>()?,
        ),
        Expr::Or(cs) => Expr::Or(
            cs.iter()
                .map(|c| bind_walk(c, params))
                .collect::<Result<_>>()?,
        ),
        Expr::Not(c) => Expr::Not(Box::new(bind_walk(c, params)?)),
        Expr::Atom(a) => Expr::Atom(match a {
            Atom::Cmp { col, op, .. } => Atom::Cmp {
                col: col.clone(),
                op: *op,
                value: next(&format!("{col} {}", op.symbol()))?,
            },
            Atom::Like {
                col,
                case_insensitive,
                ..
            } => {
                let v = next(&format!("{col} LIKE"))?;
                let Value::Str(pattern) = v else {
                    return Err(BasiliskError::Type(format!(
                        "LIKE pattern parameter for {col} must be a string, got {v}"
                    )));
                };
                Atom::Like {
                    col: col.clone(),
                    pattern,
                    case_insensitive: *case_insensitive,
                }
            }
            Atom::IsNull { col } => Atom::IsNull { col: col.clone() },
            Atom::InList { col, values } => Atom::InList {
                col: col.clone(),
                values: values
                    .iter()
                    .map(|_| next(&format!("{col} IN")))
                    .collect::<Result<_>>()?,
            },
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_same_key_different_params() {
        let a = normalize_select(
            "SELECT t.id FROM title t JOIN m ON t.id = m.tid \
             WHERE t.year > 2000 AND m.score > '7.0' OR t.name LIKE '%x%'",
        )
        .unwrap();
        let b = normalize_select(
            "SELECT t.id FROM title t JOIN m ON t.id = m.tid \
             WHERE t.year > 1990 AND m.score > '9.9' OR t.name LIKE '%zz%'",
        )
        .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.params.len(), 3);
        assert_eq!(a.params[0], Value::Int(2000));
        assert_eq!(b.params[0], Value::Int(1990));
        assert_eq!(b.params[2], Value::Str("%zz%".into()));
        assert!(a.key.contains("?1") && a.key.contains("?3"), "{}", a.key);
        assert!(!a.key.contains("2000"), "{}", a.key);
    }

    #[test]
    fn shape_changes_change_the_key() {
        let base = normalize_select("SELECT * FROM t WHERE t.a > 1").unwrap();
        for other in [
            "SELECT * FROM t WHERE t.a < 1",         // operator
            "SELECT * FROM t WHERE t.b > 1",         // column
            "SELECT t.a FROM t WHERE t.a > 1",       // projection
            "SELECT * FROM t WHERE t.a > 1 LIMIT 5", // limit
            "SELECT COUNT(*) FROM t WHERE t.a > 1",  // count
            "SELECT * FROM t WHERE NOT t.a > 1",     // NOT
            "SELECT * FROM t WHERE t.a IN (1, 2)",   // different atom
        ] {
            let n = normalize_select(other).unwrap();
            assert_ne!(base.key, n.key, "{other}");
        }
        // IN-list arity is part of the shape.
        let in2 = normalize_select("SELECT * FROM t WHERE t.a IN (1, 2)").unwrap();
        let in3 = normalize_select("SELECT * FROM t WHERE t.a IN (1, 2, 3)").unwrap();
        assert_ne!(in2.key, in3.key);
        assert_eq!(in3.params.len(), 3);
    }

    #[test]
    fn bind_roundtrips_extraction() {
        let n = normalize_select(
            "SELECT * FROM t WHERE (t.a BETWEEN 1 AND 5 OR t.s ILIKE '%q%') \
             AND t.c IN (7, 8) AND t.d IS NULL",
        )
        .unwrap();
        let pred = n.stmt.predicate.clone().unwrap();
        let params = extract_params(&pred);
        // BETWEEN desugars to two comparisons: 2 + 1 LIKE + 2 IN = 5.
        assert_eq!(params.len(), 5);
        assert_eq!(count_params(&pred), 5);
        let rebound = bind_params(&pred, &params).unwrap();
        assert_eq!(rebound, pred, "identity binding");
        // Fresh values land in walk order.
        let fresh: Vec<Value> = vec![
            Value::Int(10),
            Value::Int(50),
            Value::Str("%zz%".into()),
            Value::Int(70),
            Value::Int(80),
        ];
        let rebound = bind_params(&pred, &fresh).unwrap();
        assert_eq!(extract_params(&rebound), fresh);
    }

    #[test]
    fn bind_arity_and_type_errors() {
        let n = normalize_select("SELECT * FROM t WHERE t.a > 1 AND t.s LIKE 'x'").unwrap();
        let pred = n.stmt.predicate.unwrap();
        assert!(bind_params(&pred, &[Value::Int(1)]).is_err(), "too few");
        assert!(
            bind_params(
                &pred,
                &[Value::Int(1), Value::Str("y".into()), Value::Int(9)]
            )
            .is_err(),
            "too many"
        );
        let e = bind_params(&pred, &[Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(e.to_string().contains("LIKE"), "{e}");
    }

    #[test]
    fn no_predicate_no_params() {
        let n = normalize_select("SELECT * FROM a JOIN b ON a.x = b.y LIMIT 3").unwrap();
        assert!(n.params.is_empty());
        assert!(n.key.contains("JOIN ON a.x = b.y"), "{}", n.key);
        assert!(n.key.ends_with("LIMIT 3"), "{}", n.key);
    }
}
