//! The §5.2 synthetic workload.
//!
//! Three tables: `T0(id, A1..Ak)` with `id` a dense primary key 1..=n,
//! and `T1`/`T2` with `fid` foreign keys drawn Zipf(1.5) over `T0.id` and
//! uniform `[0,1)` attributes. The DNF base query is
//!
//! ```sql
//! SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid JOIN T2 ON T0.id = T2.fid
//! WHERE (T1.A1 < 0.2 AND T2.A1 < 0.2) OR (T1.A2 < 0.2 AND T2.A2 < 0.2)
//! ```
//!
//! and the CNF version swaps the ANDs and ORs. The generators below
//! parameterize selectivity, table size, number of root clauses and the
//! outer conjunctive factor — the four sweeps of Fig. 4.

use basilisk_expr::{and, col, or, ColumnRef, Expr};
use basilisk_plan::Query;
use basilisk_storage::{Column, Table};
use basilisk_types::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Parameters for the synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Rows per table (the paper uses 10k by default, 1k–50k in Fig. 4b).
    pub rows: usize,
    /// Number of `A*` attributes per table (≥ number of root clauses; the
    /// paper sweeps up to 7 clauses).
    pub num_attrs: usize,
    /// Zipf shape for the foreign keys (paper: 1.5).
    pub zipf_shape: f64,
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 10_000,
            num_attrs: 7,
            zipf_shape: 1.5,
            seed: 0x5EED_BA51,
        }
    }
}

/// Generate `[T0, T2, T1]`… rather: `[T0, T1, T2]`.
pub fn generate_synthetic(cfg: &SyntheticConfig) -> Result<Vec<Table>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.rows, cfg.zipf_shape);

    let mut tables = Vec::with_capacity(3);
    // T0: dense primary key.
    let mut cols: Vec<(String, Column)> = vec![(
        "id".to_string(),
        Column::from_ints((1..=cfg.rows as i64).collect()),
    )];
    for a in 1..=cfg.num_attrs {
        cols.push((
            format!("a{a}"),
            Column::from_floats((0..cfg.rows).map(|_| rng.gen::<f64>()).collect()),
        ));
    }
    tables.push(Table::from_columns("t0", cols)?);

    for name in ["t1", "t2"] {
        let mut cols: Vec<(String, Column)> = vec![(
            "fid".to_string(),
            Column::from_ints(
                (0..cfg.rows)
                    .map(|_| zipf.sample(&mut rng) as i64)
                    .collect(),
            ),
        )];
        for a in 1..=cfg.num_attrs {
            cols.push((
                format!("a{a}"),
                Column::from_floats((0..cfg.rows).map(|_| rng.gen::<f64>()).collect()),
            ));
        }
        tables.push(Table::from_columns(name, cols)?);
    }
    Ok(tables)
}

fn base_query() -> Query {
    Query::new(vec![
        ("t0".into(), "t0".into()),
        ("t1".into(), "t1".into()),
        ("t2".into(), "t2".into()),
    ])
    .join(ColumnRef::new("t0", "id"), ColumnRef::new("t1", "fid"))
    .join(ColumnRef::new("t0", "id"), ColumnRef::new("t2", "fid"))
}

/// The DNF query: `OR_i (T1.Ai < sel AND T2.Ai < sel)` over `clauses`
/// root clauses. `outer_factor` adds the Fig. 4d conjunct `T0.A1 < f`
/// *inside every clause* ("for DNF queries, the same T0.A1 < 0.1 was
/// included in each root clause").
pub fn dnf_query(clauses: usize, sel: f64, outer_factor: Option<f64>) -> Query {
    assert!(clauses >= 1);
    let mut terms: Vec<Expr> = Vec::with_capacity(clauses);
    for i in 1..=clauses {
        let a = format!("a{i}");
        let mut conj = vec![col("t1", &a).lt(sel), col("t2", &a).lt(sel)];
        if let Some(f) = outer_factor {
            conj.insert(0, col("t0", "a1").lt(f));
        }
        terms.push(and(conj));
    }
    base_query().filter(or(terms))
}

/// The CNF query: `AND_i (T1.Ai < sel OR T2.Ai < sel)`, with the optional
/// outer conjunctive factor `T0.A1 < f` as an extra top-level conjunct
/// (the §5.2 form `T0.A1 < 0.1 AND (T1.A1 < 0.2 OR T2.A1 < 0.2) AND …`).
pub fn cnf_query(clauses: usize, sel: f64, outer_factor: Option<f64>) -> Query {
    assert!(clauses >= 1);
    let mut terms: Vec<Expr> = Vec::with_capacity(clauses + 1);
    if let Some(f) = outer_factor {
        terms.push(col("t0", "a1").lt(f));
    }
    for i in 1..=clauses {
        let a = format!("a{i}");
        terms.push(or(vec![col("t1", &a).lt(sel), col("t2", &a).lt(sel)]));
    }
    base_query().filter(and(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_catalog::Catalog;
    use basilisk_plan::{PlannerKind, QuerySession};

    fn small_catalog() -> Catalog {
        let cfg = SyntheticConfig {
            rows: 500,
            num_attrs: 3,
            ..SyntheticConfig::default()
        };
        let mut cat = Catalog::new();
        for t in generate_synthetic(&cfg).unwrap() {
            cat.add_table(t).unwrap();
        }
        cat
    }

    #[test]
    fn shapes_and_keys() {
        let cfg = SyntheticConfig {
            rows: 200,
            num_attrs: 2,
            ..SyntheticConfig::default()
        };
        let tables = generate_synthetic(&cfg).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].name(), "t0");
        assert_eq!(tables[0].num_rows(), 200);
        assert_eq!(tables[0].num_columns(), 3); // id + a1 + a2
                                                // T0 ids dense 1..=n.
        let ids = tables[0].column("id").unwrap().scan().unwrap();
        assert_eq!(ids.as_ints().unwrap()[0], 1);
        assert_eq!(ids.as_ints().unwrap()[199], 200);
        // Foreign keys in range, and 1 is the most frequent (Zipf head).
        for t in &tables[1..] {
            let fids = t.column("fid").unwrap().scan().unwrap();
            let fids = fids.as_ints().unwrap();
            assert!(fids.iter().all(|&f| (1..=200).contains(&f)));
            let ones = fids.iter().filter(|&&f| f == 1).count();
            assert!(
                ones as f64 / fids.len() as f64 > 0.2,
                "Zipf(1.5) head should dominate: {ones}"
            );
        }
        // Attributes in [0,1).
        let a1 = tables[1].column("a1").unwrap().scan().unwrap();
        assert!(a1
            .as_floats()
            .unwrap()
            .iter()
            .all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn determinism() {
        let cfg = SyntheticConfig {
            rows: 100,
            num_attrs: 2,
            ..SyntheticConfig::default()
        };
        let a = generate_synthetic(&cfg).unwrap();
        let b = generate_synthetic(&cfg).unwrap();
        let fa = a[1].column("fid").unwrap().scan().unwrap();
        let fb = b[1].column("fid").unwrap().scan().unwrap();
        assert_eq!(fa.as_ints().unwrap(), fb.as_ints().unwrap());
    }

    #[test]
    fn query_shapes() {
        let q = dnf_query(2, 0.2, None);
        assert!(q.validate().is_ok());
        let p = q.predicate.as_ref().unwrap();
        assert!(matches!(p, Expr::Or(cs) if cs.len() == 2));
        let q = cnf_query(3, 0.2, Some(0.5));
        let p = q.predicate.as_ref().unwrap();
        assert!(matches!(p, Expr::And(cs) if cs.len() == 4));
        let q = dnf_query(2, 0.2, Some(0.5));
        let Expr::Or(cs) = q.predicate.as_ref().unwrap() else {
            panic!()
        };
        for c in cs {
            assert!(matches!(c, Expr::And(inner) if inner.len() == 3));
        }
    }

    /// DNF and CNF with the same parameters are different queries, and all
    /// planners agree on each.
    #[test]
    fn planners_agree_on_synthetic() {
        let cat = small_catalog();
        for q in [dnf_query(2, 0.3, None), cnf_query(2, 0.3, None)] {
            let session = QuerySession::new(&cat, q).unwrap();
            let reference = session
                .execute(&session.plan(PlannerKind::BPushConj).unwrap())
                .unwrap()
                .canonical_tuples();
            for kind in [
                PlannerKind::TCombined,
                PlannerKind::BDisj,
                PlannerKind::TPushdown,
            ] {
                let out = session.execute(&session.plan(kind).unwrap()).unwrap();
                assert_eq!(out.canonical_tuples(), reference, "{kind} disagrees");
            }
            assert!(!reference.is_empty(), "query should produce results");
        }
    }
}
