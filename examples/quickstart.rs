//! Quickstart: the paper's movie-night scenario (§1, Query 1).
//!
//! We want recent movies scoring above 7.0, or older "masterpieces"
//! scoring above 8.0 — a disjunction spanning two tables, which is exactly
//! the query shape traditional engines handle badly and tagged execution
//! handles well.
//!
//! Run with: `cargo run --release --example quickstart`

use basilisk::{DataType, Database, PlannerKind, Result, TableBuilder};

fn main() -> Result<()> {
    // 1. Build the two tables from the paper's Examples 1–3.
    let mut db = Database::new();

    let mut titles = TableBuilder::new("title")
        .column("title", DataType::Str)
        .column("year", DataType::Int)
        .column("id", DataType::Int);
    for (t, y, id) in [
        ("The Dark Knight", 2008i64, 1i64),
        ("Evolution", 2001, 2),
        ("The Shawshank Redemption", 1994, 3),
        ("Pulp Fiction", 1994, 4),
        ("The Godfather", 1972, 5),
        ("Beetlejuice", 1988, 6),
        ("Avatar", 2009, 7),
    ] {
        titles.push_row(vec![t.into(), y.into(), id.into()])?;
    }
    db.register(titles.finish()?)?;

    let mut scores = TableBuilder::new("movie_info_idx")
        .column("score", DataType::Str)
        .column("movie_id", DataType::Int);
    for (s, mid) in [
        ("9.0", 1i64),
        ("9.3", 3),
        ("8.9", 4),
        ("9.2", 5),
        ("7.5", 6),
        ("7.9", 7),
    ] {
        scores.push_row(vec![s.into(), mid.into()])?;
    }
    db.register(scores.finish()?)?;

    // 2. Query 1, verbatim from the paper.
    let sql = "SELECT t.title, t.year, mi_idx.score \
               FROM title AS t JOIN movie_info_idx AS mi_idx \
               ON t.id = mi_idx.movie_id \
               WHERE (t.year > 2000 AND mi_idx.score > '7.0') \
                  OR (t.year > 1980 AND mi_idx.score > '8.0')";

    println!("-- Query 1 --\n{sql}\n");

    // 3. Run it under tagged execution (TCombined picks the best tagged
    //    plan) and print the result.
    let result = db.sql_with(sql, PlannerKind::TCombined)?;
    println!("{}", result.to_table_string(20));
    println!(
        "planner: {} (chose {}), planned in {:?}, executed in {:?}\n",
        result.planner,
        result.chosen.map(|k| k.name()).unwrap_or("n/a"),
        result.timings.planning,
        result.timings.execution
    );

    // 4. Look at the plans: tagged pushdown vs the traditional
    //    union-of-clauses rewrite.
    println!(
        "-- tagged plan --\n{}",
        db.explain(sql, PlannerKind::TCombined)?
    );
    println!(
        "-- traditional BDisj plan --\n{}",
        db.explain(sql, PlannerKind::BDisj)?
    );

    Ok(())
}
