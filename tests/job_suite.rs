//! All 33 JOB-style disjunctive query groups at small scale: every planner
//! agrees, and the factored form is equivalent.

use basilisk::{factor_common_conjuncts, Catalog, PlannerKind, QuerySession};
use basilisk_workload::{generate_imdb, job_queries, ImdbConfig};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for t in generate_imdb(&ImdbConfig {
        scale: 0.02,
        seed: 42,
    })
    .unwrap()
    {
        cat.add_table(t).unwrap();
    }
    cat
}

#[test]
fn all_33_groups_all_planners_agree() {
    let cat = catalog();
    let mut nonempty = 0;
    for jq in job_queries(42) {
        let session = QuerySession::new(&cat, jq.query.clone()).unwrap();
        let reference = session
            .execute(&session.plan(PlannerKind::BDisj).unwrap())
            .unwrap()
            .canonical_tuples();
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TPullup,
            PlannerKind::TIterPush,
            PlannerKind::TPushConj,
            PlannerKind::TCombined,
            PlannerKind::BPushConj,
        ] {
            let out = session.execute(&session.plan(kind).unwrap()).unwrap();
            assert_eq!(
                out.canonical_tuples(),
                reference,
                "group {} under {kind}",
                jq.group
            );
        }
        if !reference.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty >= 20,
        "most groups should return rows at this scale (got {nonempty}/33)"
    );
}

#[test]
fn factored_forms_equivalent_for_all_groups() {
    let cat = catalog();
    for jq in job_queries(42) {
        let mut factored = jq.query.clone();
        factored.predicate = Some(factor_common_conjuncts(
            jq.query.predicate.as_ref().unwrap(),
        ));
        let s1 = QuerySession::new(&cat, jq.query.clone()).unwrap();
        let s2 = QuerySession::new(&cat, factored).unwrap();
        let r1 = s1
            .execute(&s1.plan(PlannerKind::TCombined).unwrap())
            .unwrap()
            .canonical_tuples();
        let r2 = s2
            .execute(&s2.plan(PlannerKind::BPushConj).unwrap())
            .unwrap()
            .canonical_tuples();
        assert_eq!(r1, r2, "group {}", jq.group);
    }
}
