//! Source-level invariant linter for the Basilisk workspace.
//!
//! Clippy and rustc enforce language-level discipline; this crate
//! enforces *repo*-level discipline that neither can see — rules born
//! from the concurrency work in PR 6–8 and checkable with nothing more
//! than a token scan (the build environment is offline, so the linter is
//! a hand-rolled scanner with zero dependencies rather than a syn-based
//! tool):
//!
//! * **`safety-comment`** — every line containing the `unsafe` keyword
//!   (a block, fn, or impl) must have a `// SAFETY:` comment (or a
//!   `# Safety` doc section) on the same line or within the
//!   [`SAFETY_WINDOW`] preceding lines.
//! * **`forbid-unsafe`** — every crate root on the allowlist (all
//!   first-party crates except `basilisk-types` and `basilisk-sched`,
//!   the only two with audited unsafe) must declare
//!   `#![forbid(unsafe_code)]`, so new unsafe can only appear where the
//!   audit already looks.
//! * **`sync-facade`** — `crates/sched` and `crates/serve` must not
//!   import `std::sync` lock/atomic types directly; they go through
//!   `basilisk_types::sync` so `--cfg basilisk_check` builds route every
//!   sync operation through the schedule-exploring runtime. (`Arc`,
//!   `Barrier` and other non-schedulable types stay allowed.)
//! * **`no-sleep`** — no `thread::sleep` outside tests, benches and
//!   examples: production code waits on condvars with real predicates,
//!   and sleeps in the serving path are exactly the latency bugs the
//!   bench gates exist to catch.
//! * **`encoded-internals`** — the raw buffer accessors of the encoded
//!   column layer (`raw_codes`, `raw_dict`, `raw_packed`) may only be
//!   named inside `crates/storage`: the encoding is invisible above the
//!   storage API, and any other crate reaching for the physical buffers
//!   would freeze the layout and break that transparency.
//!
//! The scanner strips comments, strings, char literals and raw strings
//! while preserving line structure, so the rules only ever see real
//! code tokens (and, separately, the comment text they need for rule
//! one). Fixtures for every rule live in `tests/fixtures/` and are
//! pinned by `tests/fixtures.rs`; the binary (`cargo run -p
//! basilisk-lint`) walks the workspace and exits non-zero on any
//! finding.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule id: unsafe without a SAFETY comment.
pub const RULE_SAFETY: &str = "safety-comment";
/// Rule id: allowlisted crate root missing `#![forbid(unsafe_code)]`.
pub const RULE_FORBID: &str = "forbid-unsafe";
/// Rule id: direct `std::sync` lock/atomic import in a façade-only crate.
pub const RULE_FACADE: &str = "sync-facade";
/// Rule id: `thread::sleep` outside tests/benches/examples.
pub const RULE_SLEEP: &str = "no-sleep";
/// Rule id: encoded-column raw buffer accessor named outside storage.
pub const RULE_ENCODED: &str = "encoded-internals";

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
/// Ten covers a multi-line SAFETY block plus an attribute or two between
/// the comment and the unsafe itself.
pub const SAFETY_WINDOW: usize = 10;

/// One lint violation, formatted `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to one source file (derived from its path by
/// [`classify`], or set directly by the fixture tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct Rules {
    pub safety: bool,
    pub forbid: bool,
    pub facade: bool,
    pub sleep: bool,
    pub encoded: bool,
}

// ---------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------

/// A source file split into parallel per-line streams: `code` holds only
/// real code tokens (comments, string/char contents blanked), `comments`
/// holds only comment text (line, block and doc comments).
pub struct Scanned {
    pub code: Vec<String>,
    pub comments: Vec<String>,
}

/// If `src[i..]` starts a raw (byte) string — `r"`, `r#"`, `br##"`, … —
/// return `(chars consumed through the opening quote, hash count)`.
fn raw_string_start(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// Tokenize `src`, blanking everything that is not code. Handles line
/// and (nested) block comments, plain and raw (byte) strings with
/// escapes, char literals (distinguished from lifetimes by lookahead)
/// and keeps the line count of the input exactly.
pub fn scan(src: &str) -> Scanned {
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let b: Vec<char> = src.chars().collect();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut cl = String::new();
    let mut cm = String::new();
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if matches!(st, St::Line) {
                st = St::Code;
            }
            code.push(std::mem::take(&mut cl));
            comments.push(std::mem::take(&mut cm));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let prev_is_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::Line;
                    i += 2;
                    // Skip doc-comment sigils so `comments` holds text.
                    while b.get(i) == Some(&'/') || b.get(i) == Some(&'!') {
                        i += 1;
                    }
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    i += 2;
                } else if !prev_is_ident
                    && (c == 'r' || c == 'b')
                    && raw_string_start(&b, i).is_some()
                {
                    let (skip, hashes) = raw_string_start(&b, i).expect("checked above");
                    cl.push('"');
                    st = St::RawStr(hashes);
                    i += skip;
                } else if c == '"' || (c == 'b' && !prev_is_ident && b.get(i + 1) == Some(&'"')) {
                    if c == 'b' {
                        i += 1;
                    }
                    cl.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == '\'' || (c == 'b' && !prev_is_ident && b.get(i + 1) == Some(&'\'')) {
                    let q = if c == 'b' { i + 1 } else { i };
                    // Char literal vs lifetime: a backslash after the
                    // quote, or any single char followed by a closing
                    // quote, is a literal; otherwise it is a lifetime.
                    if b.get(q + 1) == Some(&'\\') {
                        let mut j = q + 2 + 1; // skip the escaped char
                        while j < b.len() && b[j] != '\'' {
                            j += if b[j] == '\\' { 2 } else { 1 };
                        }
                        cl.push_str("' '");
                        i = (j + 1).min(b.len());
                    } else if b.get(q + 2) == Some(&'\'') {
                        cl.push_str("' '");
                        i = q + 3;
                    } else {
                        cl.push('\'');
                        i += 1;
                    }
                } else {
                    cl.push(c);
                    i += 1;
                }
            }
            St::Line => {
                cm.push(c);
                i += 1;
            }
            St::Block(depth) => {
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cm.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' && b.get(i + 1).is_some_and(|&n| n != '\n') {
                    cl.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    cl.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cl.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
                    cl.push('"');
                    st = St::Code;
                    i += 1 + hashes;
                } else {
                    cl.push(' ');
                    i += 1;
                }
            }
        }
    }
    code.push(cl);
    comments.push(cm);
    Scanned { code, comments }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `hay` contain `word` bounded by non-identifier chars?
pub fn has_word(hay: &str, word: &str) -> bool {
    find_word(hay, word).is_some()
}

fn find_word(hay: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_word_char);
        let after_ok = !hay[at + word.len()..]
            .chars()
            .next()
            .is_some_and(is_word_char);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn push(out: &mut Vec<Finding>, file: &Path, line: usize, rule: &'static str, msg: String) {
    out.push(Finding {
        file: file.to_path_buf(),
        line,
        rule,
        message: msg,
    });
}

/// Rule `safety-comment`: every code line containing the `unsafe`
/// keyword needs a `SAFETY:` (or doc `# Safety`) comment nearby.
fn check_safety(file: &Path, sc: &Scanned, out: &mut Vec<Finding>) {
    for (ln, line) in sc.code.iter().enumerate() {
        if !has_word(line, "unsafe") {
            continue;
        }
        let lo = ln.saturating_sub(SAFETY_WINDOW);
        let documented = sc.comments[lo..=ln]
            .iter()
            .any(|c| c.contains("SAFETY:") || c.contains("# Safety"));
        if !documented {
            push(
                out,
                file,
                ln + 1,
                RULE_SAFETY,
                format!(
                    "`unsafe` without a `// SAFETY:` comment on the same line or the {SAFETY_WINDOW} lines above"
                ),
            );
        }
    }
}

/// Rule `forbid-unsafe`: the crate root must declare
/// `#![forbid(unsafe_code)]`.
fn check_forbid(file: &Path, sc: &Scanned, out: &mut Vec<Finding>) {
    let compact: String = sc
        .code
        .iter()
        .map(|l| l.split_whitespace().collect::<String>())
        .collect();
    if !compact.contains("#![forbid(unsafe_code)]") {
        push(
            out,
            file,
            1,
            RULE_FORBID,
            "crate root of an unsafe-free crate must declare #![forbid(unsafe_code)]".into(),
        );
    }
}

/// `std::sync` names the façade wraps — importing these directly would
/// let code dodge the `basilisk_check` instrumentation.
const FACADE_BANNED: &[&str] = &[
    "Mutex",
    "MutexGuard",
    "Condvar",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "atomic",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
];

/// Rule `sync-facade`: no direct `std::sync::{Mutex, Condvar, RwLock,
/// atomic…}` mention in façade-only crates (`use` or inline path). The
/// capture window runs from the `std::sync::` occurrence to the next
/// `;`, spanning lines so multi-line `use` groups are covered.
fn check_facade(file: &Path, sc: &Scanned, out: &mut Vec<Finding>) {
    for (ln, line) in sc.code.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = line[from..].find("std::sync::") {
            let at = from + pos;
            let mut window = line[at..].to_string();
            let mut look = ln + 1;
            while !window.contains(';') && look < sc.code.len() && look <= ln + 12 {
                window.push(' ');
                window.push_str(&sc.code[look]);
                look += 1;
            }
            let window = window.split(';').next().unwrap_or(&window);
            if let Some(banned) = FACADE_BANNED.iter().find(|b| has_word(window, b)) {
                push(
                    out,
                    file,
                    ln + 1,
                    RULE_FACADE,
                    format!(
                        "direct `std::sync::…{banned}` — import it from `basilisk_types::sync` \
                         so `--cfg basilisk_check` builds are instrumented"
                    ),
                );
            }
            from = at + "std::sync::".len();
        }
    }
}

/// Line ranges (0-based, inclusive) covered by `#[cfg(test)] mod … { }`.
fn cfg_test_ranges(sc: &Scanned) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for (ln, line) in sc.code.iter().enumerate() {
        if !line
            .split_whitespace()
            .collect::<String>()
            .contains("#[cfg(test)]")
        {
            continue;
        }
        // Find the `mod` this attribute decorates (same or next lines).
        let Some(mod_ln) = (ln..sc.code.len().min(ln + 4)).find(|&l| has_word(&sc.code[l], "mod"))
        else {
            continue;
        };
        // Brace-match from the first `{` at or after the mod line.
        let mut depth = 0usize;
        let mut opened = false;
        'outer: for (l, line) in sc.code.iter().enumerate().skip(mod_ln) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            ranges.push((ln, l));
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    ranges
}

/// Rule `no-sleep`: `thread::sleep` only inside `#[cfg(test)]` modules
/// (file-level exemptions — tests/, benches/, examples/ — are handled by
/// [`classify`]).
fn check_sleep(file: &Path, sc: &Scanned, out: &mut Vec<Finding>) {
    let exempt = cfg_test_ranges(sc);
    for (ln, line) in sc.code.iter().enumerate() {
        if line.contains("thread::sleep") && !exempt.iter().any(|&(a, b)| a <= ln && ln <= b) {
            push(
                out,
                file,
                ln + 1,
                RULE_SLEEP,
                "`thread::sleep` outside tests/benches — wait on a condvar predicate instead"
                    .into(),
            );
        }
    }
}

/// The accessors that expose an [`EncodedColumn`]'s physical buffers;
/// naming any of them outside `crates/storage` couples the caller to
/// the encoding and breaks storage-API transparency.
const ENCODED_BANNED: &[&str] = &["raw_codes", "raw_dict", "raw_packed"];

/// Rule `encoded-internals`: no encoded-column raw buffer accessor
/// outside `crates/storage` (file-level scoping is handled by
/// [`classify`]).
fn check_encoded(file: &Path, sc: &Scanned, out: &mut Vec<Finding>) {
    for (ln, line) in sc.code.iter().enumerate() {
        if let Some(banned) = ENCODED_BANNED.iter().find(|b| has_word(line, b)) {
            push(
                out,
                file,
                ln + 1,
                RULE_ENCODED,
                format!(
                    "`{banned}` reaches into an encoded column's physical buffers — \
                     only crates/storage may see the encoding; go through the \
                     `EncodedColumn` API"
                ),
            );
        }
    }
}

/// Run the enabled rules over one source file.
pub fn lint_source(file: &Path, src: &str, rules: &Rules) -> Vec<Finding> {
    let sc = scan(src);
    let mut out = Vec::new();
    if rules.safety {
        check_safety(file, &sc, &mut out);
    }
    if rules.forbid {
        check_forbid(file, &sc, &mut out);
    }
    if rules.facade {
        check_facade(file, &sc, &mut out);
    }
    if rules.sleep {
        check_sleep(file, &sc, &mut out);
    }
    if rules.encoded {
        check_encoded(file, &sc, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// Workspace walk + per-file rule selection
// ---------------------------------------------------------------------

/// Crates allowed to contain (audited, SAFETY-commented) unsafe; every
/// other first-party crate root must `#![forbid(unsafe_code)]`.
const UNSAFE_ALLOWED_CRATES: &[&str] = &["types", "sched"];

/// Derive the rule set for `rel` (path relative to the workspace root).
pub fn classify(rel: &Path) -> Rules {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    let in_crates = parts.first() == Some(&"crates");
    let crate_name = if in_crates {
        parts.get(1).copied()
    } else {
        None
    };
    let under = |dir: &str| parts.contains(&dir);

    // Crate roots: root src/lib.rs, crates/X/src/{lib,main}.rs,
    // crates/X/src/bin/*.rs (each bin is its own crate root).
    let tail: Vec<&str> = if in_crates {
        parts[2..].to_vec()
    } else {
        parts.clone()
    };
    let is_root = matches!(tail.as_slice(), ["src", "lib.rs"] | ["src", "main.rs"])
        || matches!(tail.as_slice(), ["src", "bin", f] if f.ends_with(".rs"));
    let forbid = is_root && !crate_name.is_some_and(|c| UNSAFE_ALLOWED_CRATES.contains(&c));

    let facade =
        matches!(crate_name, Some("sched") | Some("serve")) && parts.get(2) == Some(&"src");

    let sleep = !under("tests") && !under("benches") && !under("examples");

    // Everything outside crates/storage (other crates' tests and
    // benches included) must stay encoding-agnostic.
    let encoded = crate_name != Some("storage");

    Rules {
        safety: true,
        forbid,
        facade,
        sleep,
        encoded,
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if path.is_dir() {
            // Third-party / generated trees, and the lint fixtures
            // (deliberately rule-breaking samples).
            if name == "target" || name == ".git" || (dir == root && name == "vendor") {
                continue;
            }
            if path.ends_with("crates/lint/tests/fixtures") {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint every first-party `.rs` file under `root`; findings are sorted
/// by path and line.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let Ok(src) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let rules = classify(&rel);
        out.extend(lint_source(&rel, &src, &rules));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_blanks_strings_and_comments() {
        let sc = scan("let x = \"unsafe // not code\"; // unsafe in comment\nunsafe {}\n");
        assert!(!has_word(&sc.code[0], "unsafe"));
        assert!(sc.comments[0].contains("unsafe in comment"));
        assert!(has_word(&sc.code[1], "unsafe"));
    }

    #[test]
    fn scanner_handles_char_literals_and_lifetimes() {
        let sc = scan("let q = '\"'; let s = \"x\"; fn f<'a>(v: &'a str) {}\n");
        // The quote inside the char literal must not open a string.
        assert!(sc.code[0].contains("fn f<'a>"));
        let sc = scan("let c = '\\n'; unsafe {}\n");
        assert!(has_word(&sc.code[0], "unsafe"));
    }

    #[test]
    fn scanner_handles_raw_strings() {
        let sc = scan("let r = r#\"unsafe \" quote\"#; let after = 1;\n");
        assert!(!has_word(&sc.code[0], "unsafe"));
        assert!(sc.code[0].contains("after"));
    }

    #[test]
    fn scanner_handles_nested_block_comments() {
        let sc = scan("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(sc.code[0].contains("let x = 1;"));
        assert!(!sc.code[0].contains("still"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("forbid(unsafe_code)", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
    }

    #[test]
    fn classify_selects_rules_by_path() {
        let r = classify(Path::new("crates/serve/src/admission.rs"));
        assert!(r.facade && r.sleep && r.safety && !r.forbid);
        let r = classify(Path::new("crates/serve/src/lib.rs"));
        assert!(r.facade && r.forbid);
        let r = classify(Path::new("crates/types/src/lib.rs"));
        assert!(!r.forbid && !r.facade);
        let r = classify(Path::new("crates/bench/src/bin/bench_json.rs"));
        assert!(r.forbid && r.encoded);
        let r = classify(Path::new("crates/storage/src/encode.rs"));
        assert!(!r.encoded, "storage may touch its own buffers");
        let r = classify(Path::new("crates/storage/tests/encode_prop.rs"));
        assert!(!r.encoded);
        let r = classify(Path::new("crates/exec/src/relation.rs"));
        assert!(r.encoded);
        let r = classify(Path::new("tests/serve_concurrent.rs"));
        assert!(!r.sleep);
        let r = classify(Path::new("src/lib.rs"));
        assert!(r.forbid);
    }
}
