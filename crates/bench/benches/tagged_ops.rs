//! Microbenchmarks: tagged operators vs their traditional counterparts on
//! identical inputs (the per-operator view of Fig. 3d's ~10% overhead).

use criterion::{criterion_group, criterion_main, Criterion};

use basilisk_catalog::Catalog;
use basilisk_core::{
    tagged_filter, tagged_join, Tag, TagMapBuilder, TagMapStrategy, TaggedRelation,
};
use basilisk_exec::{filter as plain_filter, hash_join, IdxRelation, JoinSide, TableSet};
use basilisk_expr::{and, col, or, ColumnRef, PredicateTree};
use basilisk_types::MaskArena;
use basilisk_workload::{generate_synthetic, SyntheticConfig};

struct Fixture {
    tables: TableSet,
    tree: PredicateTree,
    rows: usize,
}

fn fixture(rows: usize) -> Fixture {
    let cfg = SyntheticConfig {
        rows,
        num_attrs: 2,
        zipf_shape: 1.5,
        seed: 99,
    };
    let mut catalog = Catalog::new();
    for t in generate_synthetic(&cfg).unwrap() {
        catalog.add_table(t).unwrap();
    }
    let aliases: Vec<(String, String)> = ["t0", "t1", "t2"]
        .iter()
        .map(|t| (t.to_string(), t.to_string()))
        .collect();
    let tables = TableSet::new(&catalog, &aliases).unwrap();
    let tree = PredicateTree::build(&or(vec![
        and(vec![col("t1", "a1").lt(0.2), col("t2", "a1").lt(0.2)]),
        and(vec![col("t1", "a2").lt(0.2), col("t2", "a2").lt(0.2)]),
    ]));
    Fixture { tables, tree, rows }
}

fn find(tree: &PredicateTree, s: &str) -> basilisk_expr::ExprId {
    tree.atom_ids()
        .into_iter()
        .find(|&id| tree.display(id) == s)
        .unwrap()
}

fn bench_filter(c: &mut Criterion) {
    let f = fixture(20_000);
    let builder = TagMapBuilder::new(&f.tree, TagMapStrategy::Generalized { use_closure: true });
    let node = find(&f.tree, "t1.a1 < 0.2");
    let map = builder.filter_map(node, &[Tag::empty()]);
    let base = TaggedRelation::base(IdxRelation::base("t1", f.rows));
    let plain_base = IdxRelation::base("t1", f.rows);

    // One arena across iterations: after the first pass the pool is warm
    // and the measured loop is the allocation-free steady state.
    let arena = MaskArena::new();
    let mut group = c.benchmark_group("filter_20k");
    group.sample_size(20);
    group.bench_function("tagged", |b| {
        b.iter(|| {
            let out = tagged_filter(&f.tables, &base, &f.tree, &map, &arena).unwrap();
            let n = out.num_slices();
            out.recycle(&arena);
            n
        })
    });
    group.bench_function("traditional", |b| {
        b.iter(|| plain_filter(&f.tables, &plain_base, &f.tree, node, &arena).unwrap())
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let f = fixture(10_000);
    let builder = TagMapBuilder::new(&f.tree, TagMapStrategy::Generalized { use_closure: true });
    // Prepare filtered tagged inputs on t1, raw base on t0.
    let n1 = find(&f.tree, "t1.a1 < 0.2");
    let n2 = find(&f.tree, "t1.a2 < 0.2");
    let mut tags = vec![Tag::empty()];
    let arena = MaskArena::new();
    let mut left = TaggedRelation::base(IdxRelation::base("t1", f.rows));
    for node in [n1, n2] {
        let m = builder.filter_map(node, &tags);
        tags = builder.filter_output_tags(&m, &tags);
        left = tagged_filter(&f.tables, &left, &f.tree, &m, &arena).unwrap();
    }
    let right = TaggedRelation::base(IdxRelation::base("t0", f.rows));
    let jmap = builder.join_map(&tags, &[Tag::empty()]);
    let lk = ColumnRef::new("t1", "fid");
    let rk = ColumnRef::new("t0", "id");

    let plain_left = IdxRelation::base("t1", f.rows);
    let plain_right = IdxRelation::base("t0", f.rows);

    let mut group = c.benchmark_group("join_10k");
    group.sample_size(20);
    group.bench_function("tagged_selective_map", |b| {
        b.iter(|| {
            let out = tagged_join(&f.tables, &left, &right, &lk, &rk, &jmap, &arena).unwrap();
            let n = out.num_tuples();
            out.recycle(&arena);
            n
        })
    });
    group.bench_function("traditional_full", |b| {
        b.iter(|| {
            hash_join(
                &f.tables,
                &plain_left,
                &plain_right,
                &lk,
                &rk,
                JoinSide::Smaller,
                &arena,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_filter, bench_join);
criterion_main!(benches);
