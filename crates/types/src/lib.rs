//! Shared primitives for the Basilisk tagged-execution engine.
//!
//! This crate hosts the vocabulary types every other Basilisk crate speaks:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed SQL values stored in
//!   columns and produced by query results.
//! * [`Truth`] — SQL's three-valued logic (§3.4 of the paper). Predicate
//!   evaluation in Basilisk is ternary end-to-end so that NULL handling and
//!   the tagged-execution extension to unknown assignments fall out
//!   naturally.
//! * [`Bitmap`] — the dense bitset used to represent relational slices
//!   (§2.5.1): tagged relations keep one immutable index relation and
//!   describe each slice as a bitmap over its positions.
//! * [`TruthMask`] — a vector of [`Truth`] stored as two bitmaps, so 3VL
//!   connectives run word-parallel (64 lanes per instruction).
//! * [`MaskArena`] — the per-query buffer pool behind allocation-free
//!   steady-state execution. Operators **check out** pooled
//!   [`TruthMask`]/[`Bitmap`]/index buffers, **evaluate** into them, and
//!   **recycle** them once consumed; [`ArenaStats`] counts pool misses so
//!   tests and CI can prove the hot path stops allocating after warmup.
//! * [`ColumnPool`] — the arena's sibling pool for `Arc`-shared output
//!   index columns (join/select/union results). Its lifecycle is
//!   **checkout → `Arc`-share → `try_unwrap` reclaim**: an operator fills
//!   a pooled `Vec<u32>`, wraps it in `Arc` inside the produced relation,
//!   and when the relation dies `Arc::try_unwrap` recovers the buffer —
//!   falling back to a plain drop while the query result still holds a
//!   reference (result columns are *deferred* and swept once the caller
//!   releases them). This extends allocation-freedom to join outputs.
//! * [`gather_u32_into`] — the word-parallel positional-gather kernel
//!   those index columns are filled with (8-lane unrolled, with a `u32x8`
//!   AVX2 path behind the `simd` feature gate);
//!   [`gather_u32_scalar_into`] is the scalar reference.
//! * [`BasiliskError`] — the common error type.
//! * [`sync`] — the synchronization façade every concurrent crate imports
//!   instead of `std::sync`: plain re-exports in normal builds, the
//!   schedule-exploring instrumented runtime under `--cfg basilisk_check`
//!   (driven by the `basilisk-check` crate).
//! * [`Histogram`] — the shared power-of-two microsecond histogram
//!   (serving latency, region slot waits) with `mean`/`quantile` on its
//!   plain-data [`HistogramSnapshot`].
//! * [`Tracer`] / [`TraceSpan`] — per-request span-tree tracing (the
//!   in-process `EXPLAIN ANALYZE`), with [`SlowLog`] as the bounded ring
//!   retaining recent slow-query traces.
//! * [`MetricsRegistry`] — pull-model metric collectors rendered as
//!   Prometheus text exposition by the `/v1/metrics` route.

mod arena;
mod bitmap;
mod colpool;
mod error;
mod gather;
mod histogram;
mod metrics;
mod morsel;
mod slots;
pub mod sync;
mod trace;
mod truth;
mod truthmask;
mod valpool;
mod value;

pub use arena::{ArenaStats, MaskArena, PoolStats};
pub use bitmap::{Bitmap, BitmapIter};
pub use colpool::ColumnPool;
pub use error::{BasiliskError, Result};
pub use gather::{gather_u32_into, gather_u32_scalar_into};
pub use histogram::{bucket_index, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use metrics::{MetricSink, MetricsRegistry};
pub use morsel::{Morsel, DEFAULT_MORSEL_ROWS};
pub use slots::SlotTable;
pub use trace::{SlowLog, SpanId, TraceSpan, TraceValue, Tracer};
pub use truth::Truth;
pub use truthmask::TruthMask;
pub use valpool::ValuePool;
pub use value::{DataType, Value};
