//! The top-level database object.

use std::path::Path;
use std::sync::Arc;

use basilisk_catalog::Catalog;
use basilisk_plan::{PlannerKind, Query, QuerySession};
use basilisk_sql::{parse_select, Projection};
use basilisk_storage::{LfuPageCache, Table};
use basilisk_types::Result;

use crate::result::SqlResult;

/// A Basilisk database: a catalog of registered tables plus the page cache
/// used for disk-resident tables.
pub struct Database {
    catalog: Catalog,
    cache: Arc<LfuPageCache>,
    default_planner: PlannerKind,
    /// Worker-count override for sessions this database builds; `None`
    /// defers to the engine default (`BASILISK_THREADS`, else the
    /// machine's available parallelism).
    workers: Option<usize>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// An empty database with a default-size page cache (4096 pages ≈
    /// 32 MiB).
    pub fn new() -> Database {
        Database::with_cache_pages(4096)
    }

    pub fn with_cache_pages(pages: usize) -> Database {
        Database {
            catalog: Catalog::new(),
            cache: Arc::new(LfuPageCache::new(pages)),
            default_planner: PlannerKind::TCombined,
            workers: None,
        }
    }

    /// Change the planner used by [`Database::sql`] (default TCombined).
    pub fn set_default_planner(&mut self, kind: PlannerKind) {
        self.default_planner = kind;
    }

    /// Set the worker count for intra-query parallelism on every session
    /// this database builds (`1` = serial execution; the default follows
    /// `BASILISK_THREADS`, else the machine's available parallelism).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Some(workers.max(1));
    }

    /// Register an in-memory table (statistics are computed on the spot).
    pub fn register(&mut self, table: Table) -> Result<()> {
        self.catalog.add_table(table)
    }

    /// Open a table previously saved with [`Database::save_table`] and
    /// register it (data pages stay on disk, read through the LFU cache).
    pub fn open_table(&mut self, dir: &Path) -> Result<()> {
        let table = Table::load(dir, Arc::clone(&self.cache))?;
        self.catalog.add_table(table)
    }

    /// Persist a registered table to `dir`.
    pub fn save_table(&self, name: &str, dir: &Path) -> Result<()> {
        self.catalog.table(name)?.save(dir)
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn cache(&self) -> &Arc<LfuPageCache> {
        &self.cache
    }

    /// Build a planning/execution session for a programmatic [`Query`].
    pub fn session(&self, query: Query) -> Result<QuerySession> {
        let session = QuerySession::new(&self.catalog, query)?;
        Ok(match self.workers {
            Some(w) => session.with_workers(w),
            None => session,
        })
    }

    /// Parse a SQL SELECT, resolving `*` against the catalog. `LIMIT` and
    /// `COUNT(*)` are handled by [`Database::sql`]; this returns the bare
    /// logical query.
    pub fn parse(&self, sql: &str) -> Result<Query> {
        Ok(self.parse_full(sql)?.0)
    }

    fn parse_full(&self, sql: &str) -> Result<(Query, Option<usize>, bool)> {
        let stmt = parse_select(sql)?;
        let limit = stmt.limit;
        let star = matches!(stmt.projection, Projection::Star);
        let is_count = matches!(stmt.projection, Projection::Count);
        let mut query = stmt.into_query();
        if star {
            let mut cols = Vec::new();
            for (alias, table_name) in &query.aliases {
                let table = self.catalog.table(table_name)?;
                for name in table.column_names() {
                    cols.push(basilisk_expr::ColumnRef::new(alias.clone(), name));
                }
            }
            query.projection = cols;
        }
        query.validate()?;
        Ok((query, limit, is_count))
    }

    /// Run a SQL query with the default planner.
    pub fn sql(&self, sql: &str) -> Result<SqlResult> {
        self.sql_with(sql, self.default_planner)
    }

    /// Run a SQL query with an explicit planner.
    pub fn sql_with(&self, sql: &str, kind: PlannerKind) -> Result<SqlResult> {
        let (query, limit, is_count) = self.parse_full(sql)?;
        let session = self.session(query)?;
        let plan = {
            let t0 = std::time::Instant::now();
            let p = session.plan(kind)?;
            (p, t0.elapsed())
        };
        let t1 = std::time::Instant::now();
        let output = session.execute(&plan.0)?;
        let execution = t1.elapsed();
        let full_count = output.count();

        let (columns, row_count) = if is_count {
            // COUNT(*): one row, one synthetic column (LIMIT 0 still
            // yields the count row, matching SQL aggregates).
            (
                vec![(
                    basilisk_expr::ColumnRef::new("", "count(*)"),
                    Arc::new(basilisk_storage::Column::from_ints(vec![full_count as i64])),
                )],
                1,
            )
        } else {
            let mut columns = session.project(&output)?;
            let mut row_count = full_count;
            if let Some(l) = limit {
                if l < row_count {
                    let keep: Vec<u32> = (0..l as u32).collect();
                    for (_, col) in &mut columns {
                        *col = Arc::new(col.gather(&keep));
                    }
                    row_count = l;
                }
            }
            (columns, row_count)
        };
        Ok(SqlResult {
            row_count,
            columns,
            planner: kind,
            chosen: plan.0.chosen_planner(),
            timings: basilisk_plan::PlanTimings {
                planning: plan.1,
                execution,
            },
        })
    }

    /// EXPLAIN: render the plan a planner would choose for a SQL query.
    pub fn explain(&self, sql: &str, kind: PlannerKind) -> Result<String> {
        let query = self.parse(sql)?;
        let session = self.session(query)?;
        let plan = session.plan(kind)?;
        Ok(session.explain(&plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::{DataType, Value};

    fn movie_db() -> Database {
        let mut db = Database::new();
        let mut b = TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("name", DataType::Str);
        for (id, year, name) in [
            (1i64, 2008i64, "The Dark Knight"),
            (2, 2001, "Evolution"),
            (3, 1994, "The Shawshank Redemption"),
            (4, 1994, "Pulp Fiction"),
            (5, 1972, "The Godfather"),
            (6, 1988, "Beetlejuice"),
            (7, 2009, "Avatar"),
        ] {
            b.push_row(vec![id.into(), year.into(), name.into()])
                .unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        let mut b = TableBuilder::new("movie_info_idx")
            .column("movie_id", DataType::Int)
            .column("score", DataType::Str);
        for (mid, s) in [
            (1i64, "9.0"),
            (3, "9.3"),
            (4, "8.9"),
            (5, "9.2"),
            (6, "7.5"),
            (7, "7.9"),
        ] {
            b.push_row(vec![mid.into(), s.into()]).unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        db
    }

    /// Query 1 from the paper, end to end through SQL.
    #[test]
    fn query1_sql_end_to_end() {
        let db = movie_db();
        let result = db
            .sql(
                "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx \
                 ON t.id = mi_idx.movie_id \
                 WHERE (t.year > 2000 AND mi_idx.score > '7.0') \
                 OR (t.year > 1980 AND mi_idx.score > '8.0')",
            )
            .unwrap();
        // Dark Knight, Avatar (recent, >7.0) + Shawshank, Pulp Fiction
        // (post-1980, >8.0).
        assert_eq!(result.row_count, 4);
        assert_eq!(result.columns.len(), 5, "star expands all columns");
        assert!(result.chosen.is_some());
    }

    #[test]
    fn every_planner_gives_same_answer() {
        let db = movie_db();
        let sql = "SELECT t.id FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                   WHERE t.year > 2000 AND mi.score > '8.0' OR t.name ILIKE '%godfather%'";
        let mut counts = Vec::new();
        for kind in [
            PlannerKind::TPushdown,
            PlannerKind::TPullup,
            PlannerKind::TIterPush,
            PlannerKind::TPushConj,
            PlannerKind::TCombined,
            PlannerKind::BDisj,
            PlannerKind::BPushConj,
        ] {
            counts.push(db.sql_with(sql, kind).unwrap().row_count);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 2, "Dark Knight + The Godfather");
    }

    #[test]
    fn explain_produces_plans() {
        let db = movie_db();
        let sql = "SELECT * FROM title t JOIN movie_info_idx mi ON t.id = mi.movie_id \
                   WHERE t.year > 2000 OR mi.score > '9.0'";
        let tagged = db.explain(sql, PlannerKind::TCombined).unwrap();
        assert!(tagged.contains("tagged plan"), "{tagged}");
        let trad = db.explain(sql, PlannerKind::BDisj).unwrap();
        assert!(trad.contains("Union"), "{trad}");
    }

    #[test]
    fn save_open_roundtrip_runs_queries_from_disk() {
        let db = movie_db();
        let dir = std::env::temp_dir().join(format!("basilisk-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        db.save_table("title", &dir.join("title")).unwrap();
        db.save_table("movie_info_idx", &dir.join("mi")).unwrap();

        let mut db2 = Database::with_cache_pages(64);
        db2.open_table(&dir.join("title")).unwrap();
        db2.open_table(&dir.join("mi")).unwrap();
        let r = db2
            .sql("SELECT t.id FROM title t WHERE t.year > 2000")
            .unwrap();
        assert_eq!(r.row_count, 3);
        assert!(db2.cache().stats().misses > 0, "reads went through cache");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nulls_handled_automatically() {
        let mut db = Database::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("note", DataType::Str)
            .column("year", DataType::Int);
        for (id, note, year) in [
            (1i64, Value::from("x"), 2005i64),
            (2, Value::Null, 2010),
            (3, Value::Null, 1990),
            (4, Value::from("co-prod"), 1990),
        ] {
            b.push_row(vec![id.into(), note, year.into()]).unwrap();
        }
        db.register(b.finish().unwrap()).unwrap();
        // Row 2 has note NULL but satisfies year > 2000: the unknown slice
        // must keep it alive (three-valued tag maps auto-enabled).
        let sql = "SELECT t.id FROM t WHERE t.note LIKE '%co%' OR t.year > 2000";
        for kind in [
            PlannerKind::TCombined,
            PlannerKind::TPushdown,
            PlannerKind::BDisj,
        ] {
            let r = db.sql_with(sql, kind).unwrap();
            assert_eq!(r.row_count, 3, "rows 1,2,4 under {kind}");
        }
    }

    #[test]
    fn errors_surface() {
        let db = movie_db();
        assert!(db.sql("SELECT * FROM nope").is_err());
        assert!(db.sql("SELECT broken").is_err());
        assert!(db.sql("SELECT * FROM title t WHERE t.zz > 1").is_err());
        let mut db2 = movie_db();
        let mut b = TableBuilder::new("title").column("id", DataType::Int);
        b.push_row(vec![1i64.into()]).unwrap();
        assert!(db2.register(b.finish().unwrap()).is_err(), "duplicate");
    }

    #[test]
    fn default_planner_override() {
        let mut db = movie_db();
        db.set_default_planner(PlannerKind::BPushConj);
        let r = db
            .sql("SELECT t.id FROM title t WHERE t.year > 2000")
            .unwrap();
        assert_eq!(r.planner, PlannerKind::BPushConj);
        assert!(r.chosen.is_none(), "traditional plans have no subplanner");
    }
}
