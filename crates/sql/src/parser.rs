//! The recursive-descent SQL parser.

use basilisk_expr::{Atom, CmpOp, ColumnRef, Expr};
use basilisk_plan::Query;
use basilisk_types::{BasiliskError, Result, Value};

use crate::lexer::{tokenize, Token, TokenKind};

/// What the SELECT clause projects.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *` — all columns of all tables (resolved against the
    /// catalog by the database layer).
    Star,
    Columns(Vec<ColumnRef>),
    /// `SELECT COUNT(*)` — the row count only.
    Count,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    pub projection: Projection,
    /// `(alias, table)` pairs in FROM order.
    pub tables: Vec<(String, String)>,
    /// Equi-join conditions from `ON` clauses.
    pub joins: Vec<(ColumnRef, ColumnRef)>,
    pub predicate: Option<Expr>,
    /// `LIMIT n`, applied after execution.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Lower to the planner's [`Query`]. `Star` lowers to an empty
    /// projection list; the database layer expands it.
    pub fn into_query(self) -> Query {
        let mut q = Query::new(self.tables);
        for (l, r) in self.joins {
            q = q.join(l, r);
        }
        if let Some(p) = self.predicate {
            q = q.filter(p);
        }
        if let Projection::Columns(cols) = self.projection {
            q = q.select(cols);
        }
        q
    }
}

/// Parse one SELECT statement (a trailing `;` is allowed).
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    // allow a trailing semicolon (lexer has no `;`, so emulate by ident…)
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> BasiliskError {
        BasiliskError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kw.to_uppercase(),
                self.peek().describe()
            )))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input: {}",
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("select")?;
        let projection = self.projection()?;
        self.expect_keyword("from")?;
        let mut tables = vec![self.table_ref()?];
        let mut joins = Vec::new();
        while self.eat_keyword("join") {
            tables.push(self.table_ref()?);
            self.expect_keyword("on")?;
            let left = self.column_ref()?;
            self.expect(&TokenKind::Eq)?;
            let right = self.column_ref()?;
            joins.push((left, right));
        }
        let predicate = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_keyword("limit") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(self.err(format!(
                        "LIMIT expects a non-negative integer, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            tables,
            joins,
            predicate,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection> {
        if matches!(self.peek(), TokenKind::Star) {
            self.bump();
            return Ok(Projection::Star);
        }
        // COUNT(*)
        if matches!(self.peek(), TokenKind::Ident(s) if s == "count") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::Star)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Projection::Count);
        }
        let mut cols = vec![self.column_ref()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            cols.push(self.column_ref()?);
        }
        Ok(Projection::Columns(cols))
    }

    fn table_ref(&mut self) -> Result<(String, String)> {
        let name = self.ident()?;
        // optional AS, optional alias
        let has_alias =
            self.eat_keyword("as") || matches!(self.peek(), TokenKind::Ident(s) if !is_reserved(s));
        let alias = if has_alias {
            self.ident()?
        } else {
            name.clone()
        };
        Ok((alias, name))
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let table = self.ident()?;
        self.expect(&TokenKind::Dot)?;
        let column = self.ident()?;
        Ok(ColumnRef::new(table, column))
    }

    // Precedence: OR < AND < NOT < predicate.
    fn expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_keyword("or") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_keyword("and") {
            terms.push(self.not_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::And(terms)
        })
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        let col = self.column_ref()?;
        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            let atom = Expr::Atom(Atom::IsNull { col });
            return Ok(if negated {
                Expr::Not(Box::new(atom))
            } else {
                atom
            });
        }
        // [NOT] LIKE / ILIKE / IN / BETWEEN
        let negated = self.eat_keyword("not");
        if self.eat_keyword("like") {
            return self.like_rest(col, false, negated);
        }
        if self.eat_keyword("ilike") {
            return self.like_rest(col, true, negated);
        }
        if self.eat_keyword("in") {
            self.expect(&TokenKind::LParen)?;
            let mut values = vec![self.literal()?];
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                values.push(self.literal()?);
            }
            self.expect(&TokenKind::RParen)?;
            let atom = Expr::Atom(Atom::InList { col, values });
            return Ok(if negated {
                Expr::Not(Box::new(atom))
            } else {
                atom
            });
        }
        if self.eat_keyword("between") {
            let lo = self.literal()?;
            self.expect_keyword("and")?;
            let hi = self.literal()?;
            let range = Expr::And(vec![
                Expr::Atom(Atom::Cmp {
                    col: col.clone(),
                    op: CmpOp::Ge,
                    value: lo,
                }),
                Expr::Atom(Atom::Cmp {
                    col,
                    op: CmpOp::Le,
                    value: hi,
                }),
            ]);
            return Ok(if negated {
                Expr::Not(Box::new(range))
            } else {
                range
            });
        }
        if negated {
            return Err(self.err("expected LIKE, ILIKE, IN or BETWEEN after NOT"));
        }
        // Comparison operator.
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other.describe()
                )))
            }
        };
        self.bump();
        let value = self.literal()?;
        Ok(Expr::Atom(Atom::Cmp { col, op, value }))
    }

    fn like_rest(&mut self, col: ColumnRef, ci: bool, negated: bool) -> Result<Expr> {
        let pattern = match self.bump() {
            TokenKind::Str(s) => s,
            other => {
                return Err(self.err(format!(
                    "LIKE pattern must be a string, found {}",
                    other.describe()
                )))
            }
        };
        let atom = Expr::Atom(Atom::Like {
            col,
            pattern,
            case_insensitive: ci,
        });
        Ok(if negated {
            Expr::Not(Box::new(atom))
        } else {
            atom
        })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Value::Int(i)),
            TokenKind::Float(f) => Ok(Value::Float(f)),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Ident(s) if s == "true" => Ok(Value::Bool(true)),
            TokenKind::Ident(s) if s == "false" => Ok(Value::Bool(false)),
            TokenKind::Ident(s) if s == "null" => Ok(Value::Null),
            other => Err(BasiliskError::Parse {
                message: format!("expected literal, found {}", other.describe()),
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
            }),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "join"
            | "on"
            | "where"
            | "and"
            | "or"
            | "not"
            | "like"
            | "ilike"
            | "is"
            | "null"
            | "in"
            | "between"
            | "as"
            | "true"
            | "false"
            | "limit"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::col;

    /// The paper's Query 1, verbatim.
    #[test]
    fn parses_query1() {
        let stmt = parse_select(
            "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx \
             ON t.id = mi_idx.movie_id \
             WHERE (t.year > 2000 AND mi_idx.score > '7.0') \
             OR (t.year > 1980 AND mi_idx.score > '8.0')",
        )
        .unwrap();
        assert_eq!(stmt.projection, Projection::Star);
        assert_eq!(
            stmt.tables,
            vec![
                ("t".to_string(), "title".to_string()),
                ("mi_idx".to_string(), "movie_info_idx".to_string())
            ]
        );
        assert_eq!(stmt.joins.len(), 1);
        let expected = Expr::Or(vec![
            Expr::And(vec![
                col("t", "year").gt(2000i64),
                col("mi_idx", "score").gt("7.0"),
            ]),
            Expr::And(vec![
                col("t", "year").gt(1980i64),
                col("mi_idx", "score").gt("8.0"),
            ]),
        ]);
        assert_eq!(stmt.predicate, Some(expected));
        let q = stmt.into_query();
        assert!(q.validate().is_ok());
        assert!(q.projection.is_empty());
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let stmt = parse_select("SELECT * FROM t WHERE t.a = 1 OR t.b = 2 AND t.c = 3").unwrap();
        let Expr::Or(children) = stmt.predicate.unwrap() else {
            panic!("OR at the root")
        };
        assert_eq!(children.len(), 2);
        assert!(matches!(children[1], Expr::And(_)));
    }

    #[test]
    fn not_precedence() {
        let stmt = parse_select("SELECT * FROM t WHERE NOT t.a = 1 AND t.b = 2").unwrap();
        let Expr::And(children) = stmt.predicate.unwrap() else {
            panic!("AND at root")
        };
        assert!(matches!(children[0], Expr::Not(_)));
        // NOT (…)
        let stmt = parse_select("SELECT * FROM t WHERE NOT (t.a = 1 AND t.b = 2)").unwrap();
        assert!(matches!(stmt.predicate.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn table_aliases() {
        // explicit AS, implicit alias, no alias
        let stmt = parse_select(
            "SELECT * FROM title AS t JOIN movie m ON t.id = m.tid JOIN cast ON t.id = cast.tid",
        )
        .unwrap();
        assert_eq!(
            stmt.tables,
            vec![
                ("t".to_string(), "title".to_string()),
                ("m".to_string(), "movie".to_string()),
                ("cast".to_string(), "cast".to_string()),
            ]
        );
    }

    #[test]
    fn projection_columns() {
        let stmt = parse_select("SELECT t.id, t.year FROM title t").unwrap();
        assert_eq!(
            stmt.projection,
            Projection::Columns(vec![ColumnRef::new("t", "id"), ColumnRef::new("t", "year")])
        );
    }

    #[test]
    fn like_variants() {
        let stmt = parse_select(
            "SELECT * FROM t WHERE t.s LIKE '%x%' AND t.u ILIKE '%y%' AND t.v NOT LIKE 'z'",
        )
        .unwrap();
        let Expr::And(children) = stmt.predicate.unwrap() else {
            panic!()
        };
        assert!(matches!(
            &children[0],
            Expr::Atom(Atom::Like {
                case_insensitive: false,
                ..
            })
        ));
        assert!(matches!(
            &children[1],
            Expr::Atom(Atom::Like {
                case_insensitive: true,
                ..
            })
        ));
        assert!(matches!(&children[2], Expr::Not(_)));
    }

    #[test]
    fn is_null_and_in_and_between() {
        let stmt = parse_select(
            "SELECT * FROM t WHERE t.a IS NULL AND t.b IS NOT NULL \
             AND t.c IN (1, 2, 3) AND t.d NOT IN ('x') \
             AND t.e BETWEEN 1 AND 5 AND t.f NOT BETWEEN 0.5 AND 0.7",
        )
        .unwrap();
        let Expr::And(children) = stmt.predicate.unwrap() else {
            panic!()
        };
        assert_eq!(children.len(), 6);
        assert!(matches!(&children[0], Expr::Atom(Atom::IsNull { .. })));
        assert!(matches!(&children[1], Expr::Not(_)));
        assert!(
            matches!(&children[2], Expr::Atom(Atom::InList { values, .. }) if values.len() == 3)
        );
        // BETWEEN desugars to a range AND.
        let Expr::And(range) = &children[4] else {
            panic!("BETWEEN desugars to AND")
        };
        assert_eq!(range.len(), 2);
        assert!(matches!(&children[5], Expr::Not(_)));
    }

    #[test]
    fn literals() {
        let stmt = parse_select(
            "SELECT * FROM t WHERE t.a = 1 AND t.b = 2.5 AND t.c = 'x' AND t.d = TRUE AND t.e = NULL",
        )
        .unwrap();
        let Expr::And(children) = stmt.predicate.unwrap() else {
            panic!()
        };
        let vals: Vec<&Value> = children
            .iter()
            .map(|c| match c {
                Expr::Atom(Atom::Cmp { value, .. }) => value,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals[0], &Value::Int(1));
        assert_eq!(vals[1], &Value::Float(2.5));
        assert_eq!(vals[2], &Value::from("x"));
        assert_eq!(vals[3], &Value::Bool(true));
        assert_eq!(vals[4], &Value::Null);
    }

    #[test]
    fn no_where_clause() {
        let stmt = parse_select("SELECT * FROM a JOIN b ON a.x = b.y").unwrap();
        assert!(stmt.predicate.is_none());
    }

    #[test]
    fn error_messages_are_positioned() {
        let e = parse_select("SELECT FROM t").unwrap_err();
        assert!(e.to_string().contains("expected"), "{e}");
        let e = parse_select("SELECT * FROM t WHERE t.a ~ 1").unwrap_err();
        assert!(e.to_string().contains("unexpected character"), "{e}");
        let e = parse_select("SELECT * FROM t WHERE t.a = ").unwrap_err();
        assert!(e.to_string().contains("expected literal"), "{e}");
        let e = parse_select("SELECT * FROM t WHERE t.a NOT 5").unwrap_err();
        assert!(e.to_string().contains("after NOT"), "{e}");
        let e = parse_select("SELECT * FROM t WHERE (t.a = 1").unwrap_err();
        assert!(e.to_string().contains("`)`"), "{e}");
        let e = parse_select("SELECT * FROM t WHERE t.a = 1 extra").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        let e = parse_select("SELECT * FROM t JOIN u ON t.a < u.b").unwrap_err();
        assert!(e.to_string().contains("`=`"), "equi-joins only: {e}");
    }

    #[test]
    fn case_insensitive_keywords() {
        let stmt = parse_select("select * from T where T.A > 1 or not T.B like 'x'").unwrap();
        assert!(stmt.predicate.is_some());
        assert_eq!(stmt.tables[0].0, "t");
    }

    #[test]
    fn deep_nesting() {
        let stmt = parse_select(
            "SELECT * FROM t WHERE ((((t.a = 1 OR (t.b = 2)) AND t.c = 3) OR t.d = 4))",
        )
        .unwrap();
        assert!(matches!(stmt.predicate.unwrap(), Expr::Or(_)));
    }
}
