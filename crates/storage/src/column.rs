//! In-memory typed columns.
//!
//! A [`Column`] holds one attribute of one table in a dense, typed layout:
//! `Vec<i64>`/`Vec<f64>`/`Vec<bool>` for fixed-width types and an
//! offsets-plus-bytes arena ([`StrData`]) for strings, with an optional
//! validity bitmap for NULLs (set bit = value present). Intermediate query
//! state never copies these (§2.5.1 — intermediates are tuples of *indices*
//! into base tables); columns are only materialized at projection time or
//! when read back from disk.

use basilisk_types::{BasiliskError, Bitmap, DataType, MaskArena, Result, Value};

/// Arena-style string storage: `offsets[i]..offsets[i+1]` spans row `i`'s
/// bytes. Avoids one heap allocation per string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrData {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl StrData {
    pub fn new() -> Self {
        StrData {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StrData {
            offsets,
            bytes: Vec::with_capacity(bytes),
        }
    }

    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len() as u32);
    }

    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        // Invariant: bytes are only appended via `push(&str)`, so every
        // offset range is valid UTF-8.
        std::str::from_utf8(&self.bytes[lo..hi]).expect("column bytes are UTF-8")
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Raw parts, used by the on-disk serializer.
    pub fn raw(&self) -> (&[u32], &[u8]) {
        (&self.offsets, &self.bytes)
    }

    pub fn from_raw(offsets: Vec<u32>, bytes: Vec<u8>) -> Result<Self> {
        if offsets.first() != Some(&0)
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) as usize != bytes.len()
        {
            return Err(BasiliskError::Corrupt("string offsets out of order".into()));
        }
        std::str::from_utf8(&bytes)
            .map_err(|_| BasiliskError::Corrupt("string bytes are not UTF-8".into()))?;
        Ok(StrData { offsets, bytes })
    }
}

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(StrData),
    Bool(Vec<bool>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(s) => s.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// One attribute of one table: typed data plus an optional validity bitmap
/// (`None` means every row is valid; a set bit means "value present").
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(BasiliskError::Corrupt(format!(
                    "validity length {} != data length {}",
                    v.len(),
                    data.len()
                )));
            }
        }
        Ok(Column { data, validity })
    }

    pub fn from_ints(v: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(v),
            validity: None,
        }
    }

    pub fn from_floats(v: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Float(v),
            validity: None,
        }
    }

    pub fn from_strs<S: AsRef<str>>(v: &[S]) -> Self {
        let mut s = StrData::with_capacity(v.len(), v.iter().map(|x| x.as_ref().len()).sum());
        for x in v {
            s.push(x.as_ref());
        }
        Column {
            data: ColumnData::Str(s),
            validity: None,
        }
    }

    pub fn from_bools(v: Vec<bool>) -> Self {
        Column {
            data: ColumnData::Bool(v),
            validity: None,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    #[inline]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    pub fn has_nulls(&self) -> bool {
        self.validity
            .as_ref()
            .map(|v| v.count_ones() < v.len())
            .unwrap_or(false)
    }

    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map(|v| v.len() - v.count_ones())
            .unwrap_or(0)
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(i)).unwrap_or(true)
    }

    /// Materialize row `i` as a [`Value`] (allocates for strings).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(s) => Value::Str(s.get(i).to_owned()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Typed fast-path accessors for vectorized evaluation.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_floats(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_strs(&self) -> Option<&StrData> {
        match &self.data {
            ColumnData::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Materialize the values at the given row indices into a fresh column
    /// (the gather primitive behind index-tuple intermediates, §2.5.1).
    pub fn gather(&self, rows: &[u32]) -> Column {
        let validity = self.validity.as_ref().map(|v| {
            let mut out = Bitmap::new(rows.len());
            for (j, &r) in rows.iter().enumerate() {
                if v.get(r as usize) {
                    out.set(j);
                }
            }
            out
        });
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::Float(v) => {
                ColumnData::Float(rows.iter().map(|&r| v[r as usize]).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(rows.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::Str(s) => {
                let mut out = StrData::with_capacity(rows.len(), 0);
                for &r in rows {
                    out.push(s.get(r as usize));
                }
                ColumnData::Str(out)
            }
        };
        Column { data, validity }
    }

    /// [`Self::gather`] with every output buffer checked out of the
    /// arena's pools ([`ValuePool`](basilisk_types::ValuePool) for typed
    /// payloads and string bytes, the index pool for string offsets, the
    /// bitmap pool for validity). The produced column must eventually go
    /// back through [`Self::recycle`] — synchronously by operators that
    /// consume it (gathered join keys), or deferred by the session for
    /// columns that escape inside a query result (projections).
    pub fn gather_in(&self, rows: &[u32], arena: &MaskArena) -> Column {
        let validity = self.validity.as_ref().map(|v| {
            let mut out = arena.bitmap(rows.len());
            for (j, &r) in rows.iter().enumerate() {
                if v.get(r as usize) {
                    out.set(j);
                }
            }
            out
        });
        let data = match &self.data {
            ColumnData::Int(v) => {
                let mut out = arena.values().checkout_ints(rows.len());
                out.extend(rows.iter().map(|&r| v[r as usize]));
                ColumnData::Int(out)
            }
            ColumnData::Float(v) => {
                let mut out = arena.values().checkout_floats(rows.len());
                out.extend(rows.iter().map(|&r| v[r as usize]));
                ColumnData::Float(out)
            }
            ColumnData::Bool(v) => {
                let mut out = arena.values().checkout_bools(rows.len());
                out.extend(rows.iter().map(|&r| v[r as usize]));
                ColumnData::Bool(out)
            }
            ColumnData::Str(s) => {
                let mut offsets = arena.indices();
                offsets.push(0);
                let bytes = arena.values().checkout_bytes(0);
                let mut out = StrData { offsets, bytes };
                for &r in rows {
                    out.push(s.get(r as usize));
                }
                ColumnData::Str(out)
            }
        };
        Column { data, validity }
    }

    /// Hand a pooled column's buffers back to the arena (the recycle step
    /// of the [`Self::gather_in`] lifecycle). Also safe on columns built
    /// without the pool — their buffers simply *join* the pool, which is
    /// how disk-gathered columns warm it.
    pub fn recycle(self, arena: &MaskArena) {
        if let Some(v) = self.validity {
            arena.recycle_bitmap(v);
        }
        match self.data {
            ColumnData::Int(v) => arena.values().recycle_ints(v),
            ColumnData::Float(v) => arena.values().recycle_floats(v),
            ColumnData::Bool(v) => arena.values().recycle_bools(v),
            ColumnData::Str(s) => {
                arena.recycle_indices(s.offsets);
                arena.values().recycle_bytes(s.bytes);
            }
        }
    }
}

/// Incremental builder accepting dynamically typed [`Value`]s, used by the
/// loaders and generators.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    data: ColumnData,
    nulls: Vec<usize>,
    len: usize,
}

impl ColumnBuilder {
    pub fn new(dtype: DataType) -> Self {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(StrData::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        };
        ColumnBuilder {
            dtype,
            data,
            nulls: Vec::new(),
            len: 0,
        }
    }

    pub fn push(&mut self, value: Value) -> Result<()> {
        match (&mut self.data, value) {
            (_, Value::Null) => {
                self.nulls.push(self.len);
                // Push a type-appropriate placeholder so the dense vectors
                // stay aligned with row numbers.
                match &mut self.data {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Float(v) => v.push(0.0),
                    ColumnData::Str(s) => s.push(""),
                    ColumnData::Bool(v) => v.push(false),
                }
            }
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(x),
            (ColumnData::Float(v), Value::Int(x)) => v.push(x as f64),
            (ColumnData::Str(s), Value::Str(x)) => s.push(&x),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            (_, other) => {
                return Err(BasiliskError::Type(format!(
                    "cannot store {other} in a {} column",
                    self.dtype
                )))
            }
        }
        self.len += 1;
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn finish(self) -> Column {
        let validity = if self.nulls.is_empty() {
            None
        } else {
            let mut v = Bitmap::all_set(self.len);
            for i in self.nulls {
                v.clear(i);
            }
            Some(v)
        };
        Column {
            data: self.data,
            validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strdata_roundtrip() {
        let mut s = StrData::new();
        s.push("hello");
        s.push("");
        s.push("wörld");
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), "hello");
        assert_eq!(s.get(1), "");
        assert_eq!(s.get(2), "wörld");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["hello", "", "wörld"]);
    }

    #[test]
    fn strdata_from_raw_validates() {
        assert!(StrData::from_raw(vec![0, 2, 1], vec![b'a', b'b']).is_err());
        assert!(StrData::from_raw(vec![1, 2], vec![b'a', b'b']).is_err());
        assert!(StrData::from_raw(vec![0, 2], vec![0xff, 0xfe]).is_err());
        let ok = StrData::from_raw(vec![0, 1, 2], vec![b'a', b'b']).unwrap();
        assert_eq!(ok.get(1), "b");
    }

    #[test]
    fn column_value_access() {
        let c = Column::from_ints(vec![10, 20, 30]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.value(1), Value::Int(20));
        assert!(!c.has_nulls());
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.as_ints(), Some(&[10, 20, 30][..]));
        assert!(c.as_floats().is_none());
    }

    #[test]
    fn builder_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Str);
        b.push(Value::from("a")).unwrap();
        b.push(Value::Null).unwrap();
        b.push(Value::from("c")).unwrap();
        let c = b.finish();
        assert!(c.has_nulls());
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::from("a"));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::from("c"));
        assert!(c.is_valid(0) && !c.is_valid(1));
    }

    #[test]
    fn builder_int_to_float_coercion() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Int(2)).unwrap();
        b.push(Value::Float(0.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.as_floats(), Some(&[2.0, 0.5][..]));
    }

    #[test]
    fn builder_type_error() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(b.push(Value::from("nope")).is_err());
    }

    #[test]
    fn gather_preserves_nulls() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [Value::Int(0), Value::Null, Value::Int(2), Value::Int(3)] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let g = c.gather(&[3, 1, 1, 0]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.value(0), Value::Int(3));
        assert_eq!(g.value(1), Value::Null);
        assert_eq!(g.value(2), Value::Null);
        assert_eq!(g.value(3), Value::Int(0));
    }

    #[test]
    fn gather_strings() {
        let c = Column::from_strs(&["x", "y", "z"]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.value(0), Value::from("z"));
        assert_eq!(g.value(1), Value::from("x"));
    }

    #[test]
    fn column_new_validates_validity_len() {
        let v = Bitmap::all_set(2);
        assert!(Column::new(ColumnData::Int(vec![1, 2, 3]), Some(v)).is_err());
    }
}
