//! The common error type shared by every Basilisk crate.

use std::fmt;
use std::io;

/// Errors produced anywhere in the Basilisk stack.
#[derive(Debug)]
pub enum BasiliskError {
    /// Storage / page cache I/O failures.
    Io(io::Error),
    /// Corrupt or unsupported on-disk data.
    Corrupt(String),
    /// Schema problems: unknown table/column, duplicate names, …
    Schema(String),
    /// Type errors during expression evaluation or loading.
    Type(String),
    /// SQL syntax errors with a byte offset into the input.
    Parse { message: String, offset: usize },
    /// Planner failures (e.g. no join path between referenced tables).
    Plan(String),
    /// Runtime execution failures.
    Exec(String),
    /// Admission overload: the server's queue is full. Carries the load
    /// snapshot at rejection time so clients (and the wire layer, which
    /// maps this to HTTP 503 + `Retry-After`) can back off intelligently.
    Busy {
        /// Requests executing when the rejection happened.
        in_flight: usize,
        /// Requests waiting in the admission queue.
        queue_depth: usize,
    },
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, BasiliskError>;

impl BasiliskError {
    /// Machine-readable error class, stable across the wire (the JSON
    /// error envelope carries exactly this string as its `kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            BasiliskError::Io(_) => "io",
            BasiliskError::Corrupt(_) => "corrupt",
            BasiliskError::Schema(_) => "schema",
            BasiliskError::Type(_) => "type",
            BasiliskError::Parse { .. } => "parse",
            BasiliskError::Plan(_) => "plan",
            BasiliskError::Exec(_) => "exec",
            BasiliskError::Busy { .. } => "busy",
        }
    }

    /// Whether retrying the *same* request later can succeed without any
    /// change on the client's side. Only overload rejections qualify: a
    /// parse error will parse the same way tomorrow, but a full queue
    /// drains.
    pub fn is_retryable(&self) -> bool {
        matches!(self, BasiliskError::Busy { .. })
    }
}

impl fmt::Display for BasiliskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasiliskError::Io(e) => write!(f, "io error: {e}"),
            BasiliskError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            BasiliskError::Schema(m) => write!(f, "schema error: {m}"),
            BasiliskError::Type(m) => write!(f, "type error: {m}"),
            BasiliskError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            BasiliskError::Plan(m) => write!(f, "plan error: {m}"),
            BasiliskError::Exec(m) => write!(f, "execution error: {m}"),
            BasiliskError::Busy {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "server busy: {in_flight} executing, {queue_depth} queued"
            ),
        }
    }
}

impl std::error::Error for BasiliskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BasiliskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BasiliskError {
    fn from(e: io::Error) -> Self {
        BasiliskError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BasiliskError::Schema("no such table t".into());
        assert_eq!(e.to_string(), "schema error: no such table t");
        let e = BasiliskError::Parse {
            message: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn busy_is_the_only_retryable_kind() {
        let busy = BasiliskError::Busy {
            in_flight: 4,
            queue_depth: 9,
        };
        assert!(busy.is_retryable());
        assert_eq!(busy.kind(), "busy");
        assert!(busy.to_string().contains("busy"));
        assert!(busy.to_string().contains('4') && busy.to_string().contains('9'));
        for e in [
            BasiliskError::Corrupt("x".into()),
            BasiliskError::Schema("x".into()),
            BasiliskError::Type("x".into()),
            BasiliskError::Parse {
                message: "x".into(),
                offset: 3,
            },
            BasiliskError::Plan("x".into()),
            BasiliskError::Exec("x".into()),
            io::Error::other("x").into(),
        ] {
            assert!(!e.is_retryable(), "{e}");
            assert!(!e.kind().is_empty());
        }
    }

    #[test]
    fn io_conversion_preserves_source() {
        use std::error::Error;
        let e: BasiliskError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
