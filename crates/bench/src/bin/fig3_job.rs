//! Figure 3 (a–d): speedups from tagged execution on the 33 JOB-style
//! disjunctive query groups.
//!
//! * panel a — BDisj / TCombined on the DNF (OR-rooted) queries.
//! * panel b — BPushConj / TCombined on the common-conjunct-factored
//!   (AND-rooted) queries.
//! * panel c — BPushConj / TMin, where TMin is the best runtime of any
//!   tagged planner.
//! * panel d — BPushConj / TPushConj: the tagged-model overhead (same plan
//!   shape, ≈0.9 in the paper ⇒ ~10% overhead).
//!
//! Usage:
//!   fig3_job [--panel a|b|c|d|all] [--scale 0.3] [--reps 3] [--seed 42]

#![forbid(unsafe_code)]

use basilisk::{factor_common_conjuncts, Catalog, PlannerKind};
use basilisk_bench::{max, mean, measure, min, speedup, Args, Measurement};
use basilisk_workload::{generate_imdb, job_queries, ImdbConfig, JobQuery};

fn main() {
    let args = Args::parse();
    let panel = args.get("--panel").unwrap_or("all").to_string();
    let scale = args.get_f64("--scale", 0.3);
    let reps = args.get_usize("--reps", 3);
    let seed = args.get_usize("--seed", 42) as u64;

    eprintln!("# generating IMDB-like dataset (scale {scale}) …");
    let mut catalog = Catalog::new();
    for t in generate_imdb(&ImdbConfig { scale, seed }).expect("generate") {
        catalog.add_table(t).expect("register");
    }
    let queries = job_queries(seed);

    if panel == "a" || panel == "all" {
        panel_a(&catalog, &queries, reps);
    }
    if panel == "b" || panel == "all" {
        panel_bcd(&catalog, &queries, reps, Panel::B);
    }
    if panel == "c" || panel == "all" {
        panel_bcd(&catalog, &queries, reps, Panel::C);
    }
    if panel == "d" || panel == "all" {
        panel_bcd(&catalog, &queries, reps, Panel::D);
    }
}

fn panel_a(catalog: &Catalog, queries: &[JobQuery], reps: usize) {
    println!("\n== Figure 3a: BDisj / TCombined (DNF queries; >1 = tagged wins) ==");
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "query", "BDisj(ms)", "TComb(ms)", "speedup", "exec-spd", "rows"
    );
    let mut speedups = Vec::new();
    let mut exec_speedups = Vec::new();
    for q in queries {
        let b = measure(catalog, &q.query, PlannerKind::BDisj, reps).expect("BDisj");
        let t = measure(catalog, &q.query, PlannerKind::TCombined, reps).expect("TCombined");
        assert_eq!(b.rows, t.rows, "planners disagree on group {}", q.group);
        let s = speedup(&b, &t);
        let es = b.exec_secs() / t.exec_secs().max(1e-9);
        speedups.push(s);
        exec_speedups.push(es);
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>9.2} {:>9.2} {:>9}",
            q.group,
            b.total_secs() * 1e3,
            t.total_secs() * 1e3,
            s,
            es,
            t.rows
        );
    }
    summary("3a (total)", &speedups);
    summary("3a (exec-only)", &exec_speedups);
}

#[derive(PartialEq, Clone, Copy)]
enum Panel {
    B,
    C,
    D,
}

fn panel_bcd(catalog: &Catalog, queries: &[JobQuery], reps: usize, panel: Panel) {
    let (title, tagged_label) = match panel {
        Panel::B => (
            "Figure 3b: BPushConj / TCombined (factored queries)",
            "TComb(ms)",
        ),
        Panel::C => (
            "Figure 3c: BPushConj / TMin (best tagged planner)",
            "TMin(ms)",
        ),
        Panel::D => (
            "Figure 3d: BPushConj / TPushConj (tagged-model overhead)",
            "TPushC(ms)",
        ),
    };
    println!("\n== {title} (>1 = tagged wins) ==");
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "query", "BPushC(ms)", tagged_label, "speedup", "exec-spd", "rows"
    );
    let mut speedups = Vec::new();
    let mut exec_speedups = Vec::new();
    for q in queries {
        // The factored, AND-rooted form (the §5.1 rewrite for BPushConj).
        let mut query = q.query.clone();
        query.predicate = Some(factor_common_conjuncts(query.predicate.as_ref().unwrap()));
        let b = measure(catalog, &query, PlannerKind::BPushConj, reps).expect("BPushConj");
        let t: Measurement = match panel {
            Panel::B => measure(catalog, &query, PlannerKind::TCombined, reps).unwrap(),
            Panel::D => measure(catalog, &query, PlannerKind::TPushConj, reps).unwrap(),
            Panel::C => {
                // TMin: minimum total runtime over all tagged planners.
                let mut best: Option<Measurement> = None;
                for kind in PlannerKind::ALL_TAGGED {
                    let m = measure(catalog, &query, kind, reps).unwrap();
                    if best.map(|b| m.total() < b.total()).unwrap_or(true) {
                        best = Some(m);
                    }
                }
                best.unwrap()
            }
        };
        assert_eq!(b.rows, t.rows, "planners disagree on group {}", q.group);
        let s = speedup(&b, &t);
        let es = b.exec_secs() / t.exec_secs().max(1e-9);
        speedups.push(s);
        exec_speedups.push(es);
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>9.2} {:>9.2} {:>9}",
            q.group,
            b.total_secs() * 1e3,
            t.total_secs() * 1e3,
            s,
            es,
            t.rows
        );
    }
    let name = match panel {
        Panel::B => "3b",
        Panel::C => "3c",
        Panel::D => "3d",
    };
    summary(&format!("{name} (total)"), &speedups);
    summary(&format!("{name} (exec-only)"), &exec_speedups);
    if panel == Panel::D {
        println!(
            "# tagged-model overhead ≈ {:.0}% (paper: ~10%)",
            (1.0 / mean(&speedups) - 1.0) * 100.0
        );
    }
}

fn summary(name: &str, speedups: &[f64]) {
    println!(
        "# fig {name}: avg speedup {:.2}x, max {:.2}x, min {:.2}x",
        mean(speedups),
        max(speedups),
        min(speedups)
    );
}
