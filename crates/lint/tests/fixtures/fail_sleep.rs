// Fixture: sleep on a production path — `no-sleep` must fire.

use std::time::Duration;

fn wait_for_server() {
    std::thread::sleep(Duration::from_millis(100));
}
