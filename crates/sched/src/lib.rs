//! Morsel-driven parallel execution for tagged plans.
//!
//! Basilisk's hot path is allocation-free and word-parallel *per core*;
//! this crate is how it uses more than one core. The model is
//! morsel-driven scheduling (Leis et al., SIGMOD 2014) specialized to the
//! bitmap-sliced tagged engine:
//!
//! * **Morsels** — base relations are split into fixed-size row ranges
//!   ([`Morsel`], default 64 Ki rows) aligned to the 64-bit words of every
//!   [`TruthMask`](basilisk_types::TruthMask)/
//!   [`Bitmap`](basilisk_types::Bitmap) over the relation. Alignment is
//!   what makes the merge trivial: each morsel owns a **disjoint word
//!   range**, so stitching per-morsel results into a relation-length mask
//!   is word concatenation
//!   ([`TruthMask::stitch`](basilisk_types::TruthMask::stitch)) — never a
//!   re-intersection, and never a data race.
//!
//! * **Work stealing** — [`WorkerPool::run`] distributes tasks into
//!   per-worker deques and spawns scoped threads
//!   (`std::thread::scope`; no external dependencies). A worker drains its
//!   own deque from the front (preserving the cache-friendly ascending
//!   row order of its block) and steals from the *back* of a victim's
//!   deque when it runs dry, so skewed morsels (one worker's rows all
//!   match, another's none) still load-balance. Results are returned in
//!   task order, which is how parallel output stays **bit-for-bit equal**
//!   to serial output: producing `results[i]` for morsel `i` commutes
//!   with who computed it.
//!
//! * **Per-worker arenas** — each worker *owns* a private
//!   [`MaskArena`]. Arenas are `Send` but deliberately not `Sync`; the
//!   pool moves each one into its worker's scope by `&mut`, so the
//!   checkout → evaluate → recycle lifecycle (and the `fresh() == 0`
//!   steady-state guarantee, per worker) holds without a single lock.
//!   The ownership rule every parallel operator follows:
//!
//!   1. a worker checks morsel-local buffers out of **its own** arena;
//!   2. buffers that survive the task (the per-morsel result) are
//!      returned to the caller **tagged with the producing worker id**;
//!   3. the caller stitches them into session-arena buffers and recycles
//!      each one **back into the arena it came from**
//!      ([`WorkerPool::with_arena`]), keeping every arena's
//!      [`outstanding()`](MaskArena::outstanding) accounting exact —
//!      error paths included ([`WorkerPool::run`] routes results
//!      produced before a failure through the caller's `discard`
//!      callback, per producing worker).
//!
//! The pool is retained by its owner (one `QuerySession`), so worker
//! arenas stay warm across executions just like the session arena.
//! Worker *threads* are not retained: a parallel region spawns scoped
//! threads and joins them before returning, which keeps the scheduler
//! free of shutdown protocols and makes `workers == 1` (or a single
//! task) run inline on the calling thread — the serial path, exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use basilisk_types::{BasiliskError, MaskArena, Result, DEFAULT_MORSEL_ROWS};

pub use basilisk_types::Morsel;

/// What a task closure sees: the executing worker's id and its private
/// arena. Buffers checked out here must either be recycled here or
/// escape inside the task's result (the caller then recycles them via
/// [`WorkerPool::with_arena`] with the result's worker id).
pub struct WorkerCtx<'a> {
    pub worker: usize,
    pub arena: &'a MaskArena,
}

/// A retained set of workers: per-worker arenas plus the morsel
/// configuration. See the module docs for the execution model.
pub struct WorkerPool {
    workers: usize,
    morsel_rows: usize,
    arenas: std::cell::RefCell<Vec<MaskArena>>,
}

impl WorkerPool {
    /// A pool of `workers` workers (clamped to ≥ 1) with the default
    /// morsel size.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        WorkerPool {
            workers,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            arenas: std::cell::RefCell::new((0..workers).map(|_| MaskArena::new()).collect()),
        }
    }

    /// Override the morsel granularity (must be a positive multiple of
    /// 64). Mainly for tests, which want many morsels over small tables.
    pub fn with_morsel_rows(mut self, rows: usize) -> WorkerPool {
        assert!(
            rows > 0 && rows.is_multiple_of(64),
            "morsel size must be a positive multiple of 64"
        );
        self.morsel_rows = rows;
        self
    }

    /// The worker count the engine should default to: the
    /// `BASILISK_THREADS` environment variable when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn default_workers() -> usize {
        std::env::var("BASILISK_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Split `len` rows into this pool's morsels.
    pub fn morsels(&self, len: usize) -> Vec<Morsel> {
        Morsel::split(len, self.morsel_rows)
    }

    /// Whether a relation of `len` rows would actually fan out: more than
    /// one worker *and* more than one morsel. Operators use this to take
    /// the untouched serial path otherwise.
    pub fn would_parallelize(&self, len: usize) -> bool {
        self.workers > 1 && len > self.morsel_rows
    }

    /// Run `f` over every task, work-stealing across the pool's workers,
    /// and return the results **in task order**, each tagged with the id
    /// of the worker whose arena produced it.
    ///
    /// On error, every already-produced result is handed to `discard`
    /// together with **its producing worker's arena** (so pooled buffers
    /// inside results flow back to the right pool and no arena's
    /// `outstanding()` count is left dangling), remaining tasks are
    /// abandoned, and the error with the lowest task index is returned —
    /// a deterministic choice even though scheduling is not.
    ///
    /// With one worker or at most one task, everything runs inline on the
    /// calling thread against worker 0's arena — no threads are spawned.
    pub fn run<T, R, F, D>(&self, tasks: Vec<T>, f: F, discard: D) -> Result<Vec<(u32, R)>>
    where
        T: Send,
        R: Send,
        F: Fn(&WorkerCtx<'_>, T) -> Result<R> + Sync,
        D: Fn(&MaskArena, R),
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut arenas = self.arenas.borrow_mut();
        let spawned = self.workers.min(n);
        if spawned == 1 {
            let ctx = WorkerCtx {
                worker: 0,
                arena: &arenas[0],
            };
            let mut out = Vec::with_capacity(n);
            for task in tasks {
                match f(&ctx, task) {
                    Ok(r) => out.push((0u32, r)),
                    Err(e) => {
                        for (_, r) in out {
                            discard(&arenas[0], r);
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(out);
        }

        // Distribute tasks into per-worker deques in contiguous blocks:
        // worker w starts on morsels ⌊w·n/W⌋.., so its own work scans
        // ascending row ranges (cache-friendly) and thieves take from the
        // far end of a victim's block.
        let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..spawned).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            let w = i * spawned / n;
            deques[w].get_mut().unwrap().push_back((i, task));
        }
        let deques = &deques[..];
        let stop = &AtomicBool::new(false);
        let f = &f;

        type WorkerOut<R> = (Vec<(usize, R)>, Option<(usize, BasiliskError)>);
        let worker_loop = |worker: usize, arena: &MaskArena| -> WorkerOut<R> {
            let ctx = WorkerCtx { worker, arena };
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    return (done, None);
                }
                // Own deque first (front: ascending order)…
                let mut claimed = deques[worker].lock().unwrap().pop_front();
                // …then steal from the back of the first non-empty victim.
                if claimed.is_none() {
                    for v in 1..spawned {
                        let victim = (worker + v) % spawned;
                        claimed = deques[victim].lock().unwrap().pop_back();
                        if claimed.is_some() {
                            break;
                        }
                    }
                }
                let Some((idx, task)) = claimed else {
                    return (done, None);
                };
                match f(&ctx, task) {
                    Ok(r) => done.push((idx, r)),
                    Err(e) => {
                        stop.store(true, Ordering::Relaxed);
                        return (done, Some((idx, e)));
                    }
                }
            }
        };

        let (first_arena, rest_arenas) = arenas.split_at_mut(1);
        let mut per_worker: Vec<WorkerOut<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = rest_arenas
                .iter_mut()
                .take(spawned - 1)
                .enumerate()
                .map(|(i, arena)| {
                    // `&mut MaskArena` is Send (exclusive ownership moves
                    // into the worker); a shared `&MaskArena` would not
                    // be, because the arena is deliberately not Sync.
                    s.spawn(move || worker_loop(i + 1, &*arena))
                })
                .collect();
            let own = worker_loop(0, &first_arena[0]);
            let mut outs = vec![own];
            for h in handles {
                // Worker closures don't panic on task errors (those are
                // Results); a propagated panic here is a real bug in a
                // task closure and should surface as a panic.
                outs.push(h.join().expect("worker thread panicked"));
            }
            outs
        });

        let mut error: Option<(usize, BasiliskError)> = None;
        for (_, err) in &mut per_worker {
            let failed_at = err.as_ref().map(|(idx, _)| *idx);
            if let Some(idx) = failed_at {
                if error.as_ref().is_none_or(|(best, _)| idx < *best) {
                    error = err.take();
                }
            }
        }
        if let Some((_, e)) = error {
            // Route every produced result back through the caller's
            // discard hook with its producing worker's arena.
            for (w, (done, _)) in per_worker.into_iter().enumerate() {
                let arena = if w == 0 {
                    &first_arena[0]
                } else {
                    &rest_arenas[w - 1]
                };
                for (_, r) in done {
                    discard(arena, r);
                }
            }
            return Err(e);
        }

        let mut slots: Vec<Option<(u32, R)>> = (0..n).map(|_| None).collect();
        for (w, (done, _)) in per_worker.into_iter().enumerate() {
            for (idx, r) in done {
                debug_assert!(slots[idx].is_none(), "task {idx} produced twice");
                slots[idx] = Some((w as u32, r));
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task produced exactly once"))
            .collect())
    }

    /// Main-thread access to one worker's arena — how callers recycle the
    /// pooled buffers inside a task result back into the arena that
    /// produced them. Panics if called while a `run` is in flight (it
    /// never is: `run` joins its workers before returning).
    pub fn with_arena<R>(&self, worker: u32, f: impl FnOnce(&MaskArena) -> R) -> R {
        f(&self.arenas.borrow()[worker as usize])
    }

    /// Sum of `outstanding()` across all worker arenas — zero whenever no
    /// parallel region is in flight, error paths included (the leak
    /// tests' invariant).
    pub fn outstanding(&self) -> usize {
        self.arenas.borrow().iter().map(|a| a.outstanding()).sum()
    }

    /// Sum of parked buffers across all worker arenas.
    pub fn pooled(&self) -> usize {
        self.arenas.borrow().iter().map(|a| a.pooled()).sum()
    }

    /// Sum of fresh checkouts across all worker arenas since the last
    /// [`Self::reset_stats`].
    pub fn fresh(&self) -> usize {
        self.arenas.borrow().iter().map(|a| a.stats().fresh()).sum()
    }

    /// Zero every worker arena's counters (pools stay warm).
    pub fn reset_stats(&self) {
        for a in self.arenas.borrow().iter() {
            a.reset_stats();
        }
    }
}

// The whole handoff model rests on arenas being movable into worker
// scopes; keep that property pinned at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<MaskArena>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let tasks: Vec<usize> = (0..40).collect();
        let out = pool
            .run(tasks, |_ctx, t| Ok(t * 10), |_a, _r: usize| {})
            .unwrap();
        assert_eq!(out.len(), 40);
        for (i, (_w, r)) in out.iter().enumerate() {
            assert_eq!(*r, i * 10);
        }
        // Which workers actually ran is machine-dependent (on a busy or
        // single-core host, worker 0 can legally drain every deque by
        // stealing before the other threads are scheduled), so only the
        // worker-id *range* is pinned here; order and completeness above
        // are the real contract.
        assert!(out.iter().all(|&(w, _)| (w as usize) < pool.workers()));
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![1u32, 2, 3],
                |ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    assert_eq!(ctx.worker, 0);
                    Ok(t + 1)
                },
                |_a, _r: u32| {},
            )
            .unwrap();
        assert_eq!(
            out.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn single_task_runs_inline_even_with_many_workers() {
        let pool = WorkerPool::new(8);
        let main_thread = std::thread::current().id();
        let out = pool
            .run(
                vec![7usize],
                |_ctx, t| {
                    assert_eq!(std::thread::current().id(), main_thread);
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        assert_eq!(out, vec![(0, 7)]);
    }

    #[test]
    fn empty_task_list() {
        let pool = WorkerPool::new(4);
        let out: Vec<(u32, ())> = pool
            .run(Vec::<()>::new(), |_, _| Ok(()), |_, _| {})
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_arena_buffers_round_trip() {
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        // Each task checks a mask out of its worker's arena and returns
        // it; the caller recycles into the producing arena.
        let out = pool
            .run(
                (0..12).collect::<Vec<usize>>(),
                |ctx, t| Ok(ctx.arena.mask(100 + t)),
                |a, m| a.recycle_mask(m),
            )
            .unwrap();
        assert_eq!(pool.outstanding(), 12, "12 masks live across arenas");
        for (w, m) in out {
            pool.with_arena(w, |a| a.recycle_mask(m));
        }
        assert_eq!(pool.outstanding(), 0, "all masks returned home");
        assert!(pool.pooled() >= 1);
    }

    /// Steady state per worker: when the same arena serves again (the
    /// deterministic single-worker pool), warm pools cover every
    /// checkout. (Across a multi-worker pool the *assignment* of tasks
    /// to workers is nondeterministic, so only per-arena — not global —
    /// freshness is guaranteed; the differential suite covers results.)
    #[test]
    fn warm_worker_pool_is_allocation_free() {
        let pool = WorkerPool::new(1);
        let serve = |pool: &WorkerPool| {
            let out = pool
                .run(
                    (0..5).collect::<Vec<usize>>(),
                    |ctx, t| Ok(ctx.arena.mask(100 + t)),
                    |a, m| a.recycle_mask(m),
                )
                .unwrap();
            for (w, m) in out {
                pool.with_arena(w, |a| a.recycle_mask(m));
            }
        };
        serve(&pool);
        assert!(pool.fresh() > 0, "first run warms the pool");
        pool.reset_stats();
        serve(&pool);
        assert_eq!(pool.fresh(), 0, "warm worker pool serves every checkout");
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn error_reports_lowest_index_and_discards_results() {
        let pool = WorkerPool::new(4).with_morsel_rows(64);
        let discarded = AtomicUsize::new(0);
        let err = pool
            .run(
                (0..20).collect::<Vec<usize>>(),
                |ctx, t| {
                    if t == 5 || t == 13 {
                        Err(BasiliskError::Exec(format!("boom {t}")))
                    } else {
                        Ok(ctx.arena.bitmap(64))
                    }
                },
                |a, bm| {
                    discarded.fetch_add(1, Ordering::Relaxed);
                    a.recycle_bitmap(bm);
                },
            )
            .unwrap_err();
        // Both failures may or may not be reached; the reported one must
        // be the lowest-index error among those that were.
        let msg = err.to_string();
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(
            pool.outstanding(),
            0,
            "every produced buffer was discarded into its own arena"
        );
        assert!(discarded.load(Ordering::Relaxed) <= 18);
    }

    #[test]
    fn error_on_inline_path_discards_too() {
        let pool = WorkerPool::new(1);
        let err = pool
            .run(
                vec![0usize, 1, 2],
                |ctx, t| {
                    if t == 2 {
                        Err(BasiliskError::Exec("late".into()))
                    } else {
                        Ok(ctx.arena.indices())
                    }
                },
                |a, v| a.recycle_indices(v),
            )
            .unwrap_err();
        assert!(err.to_string().contains("late"));
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn stealing_drains_a_stalled_owner() {
        // One worker's tasks are slow; the other must steal the fast ones
        // from the victim's block and everything still lands in order.
        let pool = WorkerPool::new(2).with_morsel_rows(64);
        let out = pool
            .run(
                (0..8).collect::<Vec<usize>>(),
                |_ctx, t| {
                    if t == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Ok(t)
                },
                |_a, _r: usize| {},
            )
            .unwrap();
        let values: Vec<usize> = out.iter().map(|&(_, r)| r).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_parses_env_shape() {
        // Not asserting the ambient value (the test runner may set the
        // env); just pin that the function never returns zero.
        assert!(WorkerPool::default_workers() >= 1);
    }

    #[test]
    fn morsels_and_would_parallelize() {
        let pool = WorkerPool::new(4).with_morsel_rows(128);
        assert_eq!(pool.morsels(300).len(), 3);
        assert!(pool.would_parallelize(300));
        assert!(!pool.would_parallelize(128));
        assert!(!WorkerPool::new(1).would_parallelize(1 << 20));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_morsel_size_panics() {
        let _ = WorkerPool::new(2).with_morsel_rows(100);
    }
}
