//! Shared primitives for the Basilisk tagged-execution engine.
//!
//! This crate hosts the vocabulary types every other Basilisk crate speaks:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed SQL values stored in
//!   columns and produced by query results.
//! * [`Truth`] — SQL's three-valued logic (§3.4 of the paper). Predicate
//!   evaluation in Basilisk is ternary end-to-end so that NULL handling and
//!   the tagged-execution extension to unknown assignments fall out
//!   naturally.
//! * [`Bitmap`] — the dense bitset used to represent relational slices
//!   (§2.5.1): tagged relations keep one immutable index relation and
//!   describe each slice as a bitmap over its positions.
//! * [`TruthMask`] — a vector of [`Truth`] stored as two bitmaps, so 3VL
//!   connectives run word-parallel (64 lanes per instruction).
//! * [`MaskArena`] — the per-query buffer pool behind allocation-free
//!   steady-state execution. Operators **check out** pooled
//!   [`TruthMask`]/[`Bitmap`]/index buffers, **evaluate** into them, and
//!   **recycle** them once consumed; [`ArenaStats`] counts pool misses so
//!   tests and CI can prove the hot path stops allocating after warmup.
//! * [`BasiliskError`] — the common error type.

mod arena;
mod bitmap;
mod error;
mod truth;
mod truthmask;
mod value;

pub use arena::{ArenaStats, MaskArena, PoolStats};
pub use bitmap::{Bitmap, BitmapIter};
pub use error::{BasiliskError, Result};
pub use truth::Truth;
pub use truthmask::TruthMask;
pub use value::{DataType, Value};
