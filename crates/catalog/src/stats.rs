//! Table and column statistics.

use std::collections::HashMap;

use basilisk_storage::{Column, ColumnData, Table};
use basilisk_types::{Result, Value};

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct non-null values (exact).
    pub ndv: f64,
    /// Fraction of rows that are NULL.
    pub null_frac: f64,
    /// Smallest non-null value, if any.
    pub min: Option<Value>,
    /// Largest non-null value, if any.
    pub max: Option<Value>,
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: usize,
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

/// Scan a table and compute exact statistics for every column.
pub fn compute_table_stats(table: &Table) -> Result<TableStats> {
    let mut columns = HashMap::new();
    for (name, handle) in table.columns() {
        let col = handle.scan()?;
        columns.insert(name.to_owned(), column_stats(&col));
    }
    Ok(TableStats {
        rows: table.num_rows(),
        columns,
    })
}

fn column_stats(col: &Column) -> ColumnStats {
    let n = col.len();
    let nulls = col.null_count();
    let null_frac = if n == 0 { 0.0 } else { nulls as f64 / n as f64 };

    let (ndv, min, max) = match col.data() {
        ColumnData::Int(v) => {
            let mut set = std::collections::HashSet::with_capacity(v.len().min(1 << 16));
            let mut min = None;
            let mut max = None;
            for (i, &x) in v.iter().enumerate() {
                if !col.is_valid(i) {
                    continue;
                }
                set.insert(x);
                min = Some(min.map_or(x, |m: i64| m.min(x)));
                max = Some(max.map_or(x, |m: i64| m.max(x)));
            }
            (set.len() as f64, min.map(Value::Int), max.map(Value::Int))
        }
        ColumnData::Float(v) => {
            let mut set = std::collections::HashSet::with_capacity(v.len().min(1 << 16));
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut any = false;
            for (i, &x) in v.iter().enumerate() {
                if !col.is_valid(i) {
                    continue;
                }
                set.insert(x.to_bits());
                min = min.min(x);
                max = max.max(x);
                any = true;
            }
            (
                set.len() as f64,
                any.then_some(Value::Float(min)),
                any.then_some(Value::Float(max)),
            )
        }
        ColumnData::Str(s) => {
            let mut set = std::collections::HashSet::with_capacity(n.min(1 << 16));
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            for i in 0..n {
                if !col.is_valid(i) {
                    continue;
                }
                let x = s.get(i);
                set.insert(x);
                min = Some(min.map_or(x, |m| m.min(x)));
                max = Some(max.map_or(x, |m| m.max(x)));
            }
            (
                set.len() as f64,
                min.map(|m| Value::Str(m.to_owned())),
                max.map(|m| Value::Str(m.to_owned())),
            )
        }
        ColumnData::Bool(v) => {
            let mut has_t = false;
            let mut has_f = false;
            for (i, &x) in v.iter().enumerate() {
                if col.is_valid(i) {
                    if x {
                        has_t = true;
                    } else {
                        has_f = true;
                    }
                }
            }
            let ndv = has_t as usize + has_f as usize;
            let min = if has_f {
                Some(Value::Bool(false))
            } else if has_t {
                Some(Value::Bool(true))
            } else {
                None
            };
            let max = if has_t {
                Some(Value::Bool(true))
            } else if has_f {
                Some(Value::Bool(false))
            } else {
                None
            };
            (ndv as f64, min, max)
        }
    };
    ColumnStats {
        ndv,
        null_frac,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    #[test]
    fn int_stats() {
        let mut b = TableBuilder::new("t").column("a", DataType::Int);
        for v in [5i64, 1, 5, 3] {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish().unwrap();
        let s = compute_table_stats(&t).unwrap();
        assert_eq!(s.rows, 4);
        let a = s.column("a").unwrap();
        assert_eq!(a.ndv, 3.0);
        assert_eq!(a.null_frac, 0.0);
        assert_eq!(a.min, Some(Value::Int(1)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert!(s.column("b").is_none());
    }

    #[test]
    fn null_fraction_and_ndv_exclude_nulls() {
        let mut b = TableBuilder::new("t").column("s", DataType::Str);
        for v in [
            Value::from("b"),
            Value::Null,
            Value::from("a"),
            Value::from("a"),
        ] {
            b.push_row(vec![v]).unwrap();
        }
        let s = compute_table_stats(&b.finish().unwrap()).unwrap();
        let c = s.column("s").unwrap();
        assert_eq!(c.ndv, 2.0);
        assert!((c.null_frac - 0.25).abs() < 1e-12);
        assert_eq!(c.min, Some(Value::from("a")));
        assert_eq!(c.max, Some(Value::from("b")));
    }

    #[test]
    fn float_and_bool_stats() {
        let mut b = TableBuilder::new("t")
            .column("f", DataType::Float)
            .column("b", DataType::Bool);
        for (f, x) in [(0.5, true), (0.25, true), (0.5, true)] {
            b.push_row(vec![f.into(), x.into()]).unwrap();
        }
        let s = compute_table_stats(&b.finish().unwrap()).unwrap();
        let f = s.column("f").unwrap();
        assert_eq!(f.ndv, 2.0);
        assert_eq!(f.min, Some(Value::Float(0.25)));
        let bl = s.column("b").unwrap();
        assert_eq!(bl.ndv, 1.0);
        assert_eq!(bl.min, Some(Value::Bool(true)));
        assert_eq!(bl.max, Some(Value::Bool(true)));
    }

    #[test]
    fn empty_table() {
        let b = TableBuilder::new("t").column("a", DataType::Int);
        let s = compute_table_stats(&b.finish().unwrap()).unwrap();
        assert_eq!(s.rows, 0);
        let a = s.column("a").unwrap();
        assert_eq!(a.ndv, 0.0);
        assert_eq!(a.min, None);
    }
}
