//! Tagged relations (§2.1, §2.5.1).
//!
//! > "Basilisk is a column-oriented system, so intermediate
//! > representations of relations contain tuples of indices rather than
//! > tuples of actual values. [...] tagged relations are constructed by
//! > creating an accompanying hash table of bitmaps. Tags serve as keys to
//! > the hash table, and each bitmap specifies which tuples belong to
//! > which relational slice."
//!
//! Slices are mutually exclusive; tuples that belong to no slice stay in
//! the index relation (filters never rewrite it — §2.5.2) but are invisible
//! to downstream operators.

use std::collections::HashMap;

use basilisk_exec::IdxRelation;
use basilisk_types::{Bitmap, MaskArena};

use crate::tag::Tag;

/// An index relation plus its tag → bitmap slice map.
#[derive(Clone)]
pub struct TaggedRelation {
    relation: IdxRelation,
    /// Slice list (kept in insertion order for deterministic execution)
    /// with a tag index for merging.
    slices: Vec<(Tag, Bitmap)>,
    by_tag: HashMap<Tag, usize>,
}

impl TaggedRelation {
    /// Wrap a base relation: one slice with the empty tag covering all
    /// tuples ("base tagged relations [...] contain only one relational
    /// slice with the 'empty' tag").
    pub fn base(relation: IdxRelation) -> TaggedRelation {
        let all = Bitmap::all_set(relation.len());
        TaggedRelation::from_slices(relation, vec![(Tag::empty(), all)])
    }

    /// [`Self::base`] with the all-tuples bitmap drawn from `arena` (the
    /// executor's scan leaves, so even the pipeline's source bitmap is
    /// pooled).
    pub fn base_in(relation: IdxRelation, arena: &MaskArena) -> TaggedRelation {
        let all = arena.bitmap_ones(relation.len());
        if all.is_zero() {
            // Zero-row scan: `from_slices` drops empty slices without
            // recycling, which would leak the pooled bitmap — hand it
            // back and build the (sliceless) relation directly.
            arena.recycle_bitmap(all);
            return TaggedRelation::from_slices(relation, vec![]);
        }
        TaggedRelation::from_slices(relation, vec![(Tag::empty(), all)])
    }

    /// Assemble from explicit slices. Empty slices are dropped (the paper
    /// removes zero-tuple slices for performance); duplicate tags merge.
    pub fn from_slices(relation: IdxRelation, slices: Vec<(Tag, Bitmap)>) -> TaggedRelation {
        let mut out = TaggedRelation {
            relation,
            slices: Vec::new(),
            by_tag: HashMap::new(),
        };
        for (tag, bm) in slices {
            out.add_slice(tag, bm);
        }
        out
    }

    /// The underlying index relation (never rewritten by filters).
    pub fn relation(&self) -> &IdxRelation {
        &self.relation
    }

    /// Number of tuples in the underlying relation (tagged or not).
    pub fn num_tuples(&self) -> usize {
        self.relation.len()
    }

    /// The slices, in deterministic order.
    pub fn slices(&self) -> &[(Tag, Bitmap)] {
        &self.slices
    }

    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    pub fn tags(&self) -> Vec<Tag> {
        self.slices.iter().map(|(t, _)| t.clone()).collect()
    }

    /// Bitmap of one slice, if present.
    pub fn slice(&self, tag: &Tag) -> Option<&Bitmap> {
        self.by_tag.get(tag).map(|&i| &self.slices[i].1)
    }

    /// Add (or merge into) a slice. Empty bitmaps are ignored.
    pub fn add_slice(&mut self, tag: Tag, bitmap: Bitmap) {
        assert_eq!(
            bitmap.len(),
            self.relation.len(),
            "slice bitmap length must match relation"
        );
        if bitmap.is_zero() {
            return;
        }
        match self.by_tag.get(&tag) {
            Some(&i) => self.slices[i].1.union_with(&bitmap),
            None => {
                self.by_tag.insert(tag.clone(), self.slices.len());
                self.slices.push((tag, bitmap));
            }
        }
    }

    /// Number of tuples belonging to any slice.
    pub fn num_tagged_tuples(&self) -> usize {
        self.union_all().count_ones()
    }

    /// Union of every slice's bitmap.
    pub fn union_all(&self) -> Bitmap {
        let mut out = Bitmap::new(self.relation.len());
        for (_, bm) in &self.slices {
            out.union_with(bm);
        }
        out
    }

    /// Union of the slices whose tags are in `tags` (missing tags are
    /// ignored: the planner may reference tags that turned out empty).
    pub fn union_of(&self, tags: &[Tag]) -> Bitmap {
        let mut out = Bitmap::new(self.relation.len());
        self.union_of_into(tags, &mut out);
        out
    }

    /// [`Self::union_of`] into a pooled buffer: checkout from `arena`,
    /// recycle when done.
    pub fn union_of_in(&self, tags: &[Tag], arena: &MaskArena) -> Bitmap {
        let mut out = arena.bitmap(self.relation.len());
        self.union_of_into(tags, &mut out);
        out
    }

    fn union_of_into(&self, tags: &[Tag], out: &mut Bitmap) {
        for t in tags {
            if let Some(bm) = self.slice(t) {
                out.union_with(bm);
            }
        }
    }

    /// Hand every slice bitmap — and the index relation's columns — back
    /// to `arena`, consuming the relation: the recycle step executors run
    /// once an operator has consumed its input. Index columns still
    /// `Arc`-shared with a downstream relation (filters never rewrite the
    /// relation, so their outputs alias their inputs' columns) are left
    /// to that holder's recycle; sole-owned columns are reclaimed via
    /// `Arc::try_unwrap` into the pool.
    pub fn recycle(self, arena: &MaskArena) {
        for (_, bm) in self.slices {
            arena.recycle_bitmap(bm);
        }
        self.relation.recycle(arena);
    }

    /// Per-tuple slice membership: `slice_of[i]` is the index (into
    /// [`slices`](Self::slices)) of the slice containing tuple `i`, or
    /// `None`. Relies on mutual exclusivity.
    pub fn slice_membership(&self) -> Vec<Option<u16>> {
        let mut out = vec![None; self.relation.len()];
        for (s, (_, bm)) in self.slices.iter().enumerate() {
            for i in bm.iter_ones() {
                debug_assert!(out[i].is_none(), "slices must be mutually exclusive");
                out[i] = Some(s as u16);
            }
        }
        out
    }

    /// Verify the §2.1 invariant that slices are pairwise disjoint
    /// (used by tests and debug assertions).
    pub fn check_mutually_exclusive(&self) -> bool {
        for i in 0..self.slices.len() {
            for j in (i + 1)..self.slices.len() {
                if !self.slices[i].1.is_disjoint(&self.slices[j].1) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::ExprId;
    use basilisk_types::Truth;

    fn tag(n: u32) -> Tag {
        Tag::from_pairs([(ExprId(n), Truth::True)])
    }

    #[test]
    fn base_has_one_full_empty_tag_slice() {
        let tr = TaggedRelation::base(IdxRelation::base("t", 5));
        assert_eq!(tr.num_tuples(), 5);
        assert_eq!(tr.num_slices(), 1);
        assert_eq!(tr.slices()[0].0, Tag::empty());
        assert_eq!(tr.slices()[0].1.count_ones(), 5);
        assert_eq!(tr.num_tagged_tuples(), 5);
        assert!(tr.check_mutually_exclusive());
    }

    #[test]
    fn add_merge_and_drop_empty() {
        let mut tr = TaggedRelation::from_slices(IdxRelation::base("t", 8), vec![]);
        assert_eq!(tr.num_slices(), 0);
        tr.add_slice(tag(1), Bitmap::from_indices(8, [0usize, 1]));
        tr.add_slice(tag(2), Bitmap::from_indices(8, [2usize]));
        tr.add_slice(tag(1), Bitmap::from_indices(8, [3usize]));
        tr.add_slice(tag(3), Bitmap::new(8)); // empty → dropped
        assert_eq!(tr.num_slices(), 2);
        assert_eq!(tr.slice(&tag(1)).unwrap().to_indices(), vec![0, 1, 3]);
        assert_eq!(tr.slice(&tag(2)).unwrap().to_indices(), vec![2]);
        assert!(tr.slice(&tag(3)).is_none());
        assert_eq!(tr.num_tagged_tuples(), 4);
    }

    #[test]
    fn union_of_selected_tags() {
        let tr = TaggedRelation::from_slices(
            IdxRelation::base("t", 6),
            vec![
                (tag(1), Bitmap::from_indices(6, [0usize, 1])),
                (tag(2), Bitmap::from_indices(6, [3usize])),
                (tag(3), Bitmap::from_indices(6, [5usize])),
            ],
        );
        let u = tr.union_of(&[tag(1), tag(3), tag(9)]);
        assert_eq!(u.to_indices(), vec![0, 1, 5]);
        assert_eq!(tr.union_all().to_indices(), vec![0, 1, 3, 5]);
        assert_eq!(tr.tags().len(), 3);
    }

    #[test]
    fn membership_vector() {
        let tr = TaggedRelation::from_slices(
            IdxRelation::base("t", 4),
            vec![
                (tag(1), Bitmap::from_indices(4, [2usize])),
                (tag(2), Bitmap::from_indices(4, [0usize])),
            ],
        );
        assert_eq!(tr.slice_membership(), vec![Some(1), None, Some(0), None]);
        assert!(tr.check_mutually_exclusive());
    }

    #[test]
    fn exclusivity_violation_detected() {
        let mut tr = TaggedRelation::from_slices(IdxRelation::base("t", 4), vec![]);
        tr.add_slice(tag(1), Bitmap::from_indices(4, [1usize, 2]));
        tr.add_slice(tag(2), Bitmap::from_indices(4, [2usize, 3]));
        assert!(!tr.check_mutually_exclusive());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_bitmap_length_panics() {
        let mut tr = TaggedRelation::base(IdxRelation::base("t", 4));
        tr.add_slice(tag(1), Bitmap::new(5));
    }
}
