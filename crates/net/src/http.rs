//! Minimal HTTP/1.1 framing over blocking streams: request-line +
//! headers + `Content-Length` body, persistent connections. Just enough
//! protocol for the wire format in the crate docs — no chunked encoding,
//! no trailers, no TLS.

use std::io::{self, BufRead, Write};

/// Largest accepted head (request/status line + headers) in bytes.
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted body in bytes (result sets stream back as one
/// document; this bounds hostile peers, not honest responses).
const MAX_BODY: usize = 256 * 1024 * 1024;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Whether the sender asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read one CRLF-terminated line (without the terminator). `Ok(None)`
/// means clean EOF *before any byte* — the peer closed an idle
/// keep-alive connection.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(invalid("eof mid-line"));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(invalid("head too large"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line).map_err(|_| invalid("non-utf8 head"))?;
                    return Ok(Some(s));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn read_headers(r: &mut impl BufRead, budget: &mut usize) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, budget)?.ok_or_else(|| invalid("eof in headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let len = match header(headers, "content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| invalid("bad content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(invalid("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Read one request off a persistent connection. `Ok(None)` = the peer
/// closed the connection between requests.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut budget = MAX_HEAD;
    let Some(line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(invalid("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported http version"));
    }
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Read one response (client side).
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let mut budget = MAX_HEAD;
    let line = read_line(r, &mut budget)?.ok_or_else(|| invalid("connection closed"))?;
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| invalid("malformed status"))?,
        _ => return Err(invalid("malformed status line")),
    };
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

pub fn write_request(w: &mut impl Write, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    write!(
        w,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write_response_typed(w, status, reason, "application/json", extra_headers, body)
}

/// [`write_response`] with an explicit `content-type` (the metrics
/// endpoint serves Prometheus text exposition, not JSON).
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\ncontent-length: {}\r\ncontent-type: {content_type}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip_keep_alive() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/sql", br#"{"sql":"SELECT 1"}"#).unwrap();
        write_request(&mut wire, "GET", "/v1/stats", b"").unwrap();
        let mut r = BufReader::new(&wire[..]);
        let one = read_request(&mut r).unwrap().unwrap();
        assert_eq!(
            (one.method.as_str(), one.path.as_str()),
            ("POST", "/v1/sql")
        );
        assert_eq!(one.body, br#"{"sql":"SELECT 1"}"#);
        assert!(!one.wants_close());
        let two = read_request(&mut r).unwrap().unwrap();
        assert_eq!(two.method, "GET");
        assert!(two.body.is_empty());
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn response_roundtrip_with_extra_headers() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            503,
            "Service Unavailable",
            &[("retry-after", "1".to_string())],
            br#"{"ok":false}"#,
        )
        .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.body, br#"{"ok":false}"#);
    }

    #[test]
    fn malformed_heads_error() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: wat\r\n\r\n",
        ] {
            let r = read_request(&mut BufReader::new(bad.as_bytes()));
            assert!(r.is_err(), "{bad:?}");
        }
        // Truncated body: the read itself fails.
        let bad = "GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nab";
        assert!(read_request(&mut BufReader::new(bad.as_bytes())).is_err());
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut wire = format!("GET /x HTTP/1.1\r\nbig: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        wire.push_str("\r\n");
        assert!(read_request(&mut BufReader::new(wire.as_bytes())).is_err());
    }
}
