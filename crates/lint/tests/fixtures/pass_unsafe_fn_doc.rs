// Fixture: unsafe fn whose contract lives in a `# Safety` doc section —
// accepted by `safety-comment` just like a `// SAFETY:` comment.

/// Reads the first element without a bounds check.
///
/// # Safety
/// `v` must be non-empty.
pub unsafe fn read_first(v: &[u32]) -> u32 {
    // SAFETY: non-empty per the function contract above.
    unsafe { *v.get_unchecked(0) }
}
