//! The shared eval-benchmark workload.
//!
//! Both the criterion bench (`benches/eval.rs`) and the CI gate emitter
//! (`src/bin/bench_json.rs`) measure **this** workload; keeping it in one
//! place guarantees the gated ratios in `benches/baseline.json` guard the
//! same code the benchmark reports on.

use basilisk_expr::eval::MapProvider;
use basilisk_expr::{and, col, or, ColumnRef, Expr};
use basilisk_storage::{Column, ColumnBuilder};
use basilisk_types::{DataType, Value};

/// Row count shared by every eval benchmark.
pub const ROWS: usize = 65_536;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Deterministic pseudo-random ints in [0, 1000).
pub fn column(seed: u64) -> Column {
    let mut state = seed;
    Column::from_ints((0..ROWS).map(|_| (lcg(&mut state) % 1000) as i64).collect())
}

/// An Int column with ~3% NULLs so both compare paths pay real validity
/// handling.
pub fn int_column_with_nulls(seed: u64) -> Column {
    let mut state = seed;
    let mut b = ColumnBuilder::new(DataType::Int);
    for _ in 0..ROWS {
        let v = lcg(&mut state) % 1000;
        if v < 30 {
            b.push(Value::Null).unwrap();
        } else {
            b.push(Value::Int(v as i64)).unwrap();
        }
    }
    b.finish()
}

/// Three seeded columns `t.a` / `t.b` / `t.c` over [`ROWS`] rows.
pub fn provider() -> MapProvider {
    MapProvider::new(ROWS)
        .with(ColumnRef::new("t", "a"), column(1))
        .with(ColumnRef::new("t", "b"), column(2))
        .with(ColumnRef::new("t", "c"), column(3))
}

/// A 6-arm disjunction of conjunctions over three columns; `t` sweeps the
/// per-atom selectivity.
pub fn wide_disjunction(t: i64) -> Expr {
    or(vec![
        and(vec![col("t", "a").lt(t), col("t", "b").lt(t)]),
        and(vec![col("t", "b").lt(t), col("t", "c").lt(t)]),
        and(vec![col("t", "a").ge(1000 - t), col("t", "c").lt(t)]),
        and(vec![col("t", "c").ge(1000 - t), col("t", "a").lt(t)]),
        and(vec![col("t", "b").ge(1000 - t), col("t", "c").ge(1000 - t)]),
        and(vec![col("t", "a").lt(t), col("t", "c").ge(1000 - t)]),
    ])
}
