//! The wire-ready serving API: [`Request`] in, [`Response`] or
//! [`ServeError`] out.
//!
//! [`Server::submit`](crate::Server::submit) is the one public entry
//! point every front end (in-process callers, the `basilisk-net`
//! HTTP/JSON listener, future protocols) goes through:
//!
//! * a [`Request`] names the work — ad-hoc SQL text or a prepared handle
//!   plus parameter values — and carries the *serving* metadata the
//!   engine itself never sees: the client id (which fairness lane the
//!   request queues in) and a [`Priority`];
//! * a [`Response`] is the materialized result plus everything a caller
//!   needs to reason about the serving path: planner/cache metadata,
//!   timings, and how long admission queued the request;
//! * a [`ServeError`] is machine-readable: a stable [`ErrorKind`], a
//!   `retryable` flag, the parse offset when there is one, and — for
//!   overload rejections — the load snapshot (`in_flight`,
//!   `queue_depth`) a client needs to back off intelligently. It
//!   round-trips through the JSON error envelope losslessly (kind,
//!   message, offset, retryability), which `basilisk-net` pins with a
//!   property test.
//!
//! [`Server::sql`](crate::Server::sql) and
//! [`Server::execute_prepared`](crate::Server::execute_prepared) are
//! thin wrappers over the same path that keep returning the engine's
//! [`BasiliskError`] for embedded callers.

use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use basilisk_expr::ColumnRef;
use basilisk_plan::{PlanTimings, PlannerKind};
use basilisk_storage::Column;
use basilisk_types::{BasiliskError, TraceSpan, Value};

use crate::cache::Prepared;

/// Dispatch priority of a [`Request`] within its fairness lane.
///
/// Priorities shape *bandwidth*, not ordering guarantees: the admission
/// scheduler charges each dispatch a deficit-round-robin cost
/// (`High` = 1, `Normal` = 2, `Low` = 4 against a per-visit quantum of
/// 2), so a lane full of high-priority requests drains four times as
/// fast as a low-priority one — but no priority can starve another
/// lane, and no request is reordered behind a *later* request of the
/// same priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Low,
}

impl Priority {
    /// Deficit-round-robin cost of one dispatch at this priority.
    pub(crate) fn cost(self) -> u32 {
        match self {
            Priority::High => 1,
            Priority::Normal => 2,
            Priority::Low => 4,
        }
    }

    /// Stable wire name (`"high"` / `"normal"` / `"low"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse a wire name produced by [`Priority::as_str`].
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a [`Request`] asks the server to run.
pub(crate) enum Command<'a> {
    /// Ad-hoc SQL text (served through the plan cache).
    Sql(&'a str),
    /// A prepared handle plus fresh parameter values.
    Execute(&'a Prepared, &'a [Value]),
}

/// One serving request: the work plus its serving metadata (see the
/// module docs). Build with [`Request::sql`] or [`Request::prepared`],
/// then chain the optional setters:
///
/// ```ignore
/// server.submit(Request::sql("SELECT …").client("tenant-7").priority(Priority::Low))?;
/// ```
pub struct Request<'a> {
    pub(crate) command: Command<'a>,
    pub(crate) client: &'a str,
    pub(crate) priority: Priority,
    pub(crate) planner: Option<PlannerKind>,
    pub(crate) trace: bool,
}

impl<'a> Request<'a> {
    /// An ad-hoc SQL request.
    pub fn sql(sql: &'a str) -> Request<'a> {
        Request {
            command: Command::Sql(sql),
            client: "",
            priority: Priority::Normal,
            planner: None,
            trace: false,
        }
    }

    /// Execute a prepared statement with fresh parameter values.
    pub fn prepared(stmt: &'a Prepared, params: &'a [Value]) -> Request<'a> {
        Request {
            command: Command::Execute(stmt, params),
            client: "",
            priority: Priority::Normal,
            planner: None,
            trace: false,
        }
    }

    /// Queue this request in `client`'s fairness lane. Requests that
    /// never set a client share the anonymous lane (`""`), so untagged
    /// traffic competes with itself, not with tagged clients.
    pub fn client(mut self, client: &'a str) -> Request<'a> {
        self.client = client;
        self
    }

    /// Dispatch priority within the lane (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Request<'a> {
        self.priority = priority;
        self
    }

    /// Planner override for SQL requests (default: the server's
    /// configured planner; ignored for prepared handles, which fixed
    /// their planner at prepare time).
    pub fn planner(mut self, planner: PlannerKind) -> Request<'a> {
        self.planner = Some(planner);
        self
    }

    /// Record an end-to-end span tree for this request (default off; the
    /// disabled path costs one branch per recording site, pinned by the
    /// `trace_overhead_max` bench gate). The finished tree is attached as
    /// [`Response::trace`] — parse, plan (cache hit/miss/rebind),
    /// admission wait, then one span per executed plan operator with row
    /// counts, morsel fan-out, region id and per-atom profiles.
    pub fn trace(mut self, trace: bool) -> Request<'a> {
        self.trace = trace;
        self
    }
}

/// Materialized projection columns of one response.
pub type OutputColumns = Vec<(ColumnRef, Arc<Column>)>;

/// A served query result: materialized projection columns plus
/// planner/cache/timing metadata. Columns are `Arc`-shared with the
/// producing context's pools and are reclaimed once the result is
/// dropped (on a later sweep of that context).
pub struct Response {
    pub columns: OutputColumns,
    pub row_count: usize,
    /// The planner that was requested.
    pub planner: PlannerKind,
    /// For TCombined, the winning subplanner.
    pub chosen: Option<PlannerKind>,
    /// On cache hits, `planning` is the bind time.
    pub timings: PlanTimings,
    /// Whether this request was served from the plan cache.
    pub cache_hit: bool,
    /// How long admission held this request in its lane before a context
    /// was granted (zero when a context was free on arrival).
    pub queue_wait: Duration,
    /// The finished span tree when the request set [`Request::trace`];
    /// `None` otherwise.
    pub trace: Option<TraceSpan>,
}

/// Pre-PR-7 name of [`Response`], kept for embedded callers.
pub type ServeResult = Response;

/// Machine-readable error class of a [`ServeError`] — the `kind` field
/// of the wire envelope. Mirrors the [`BasiliskError`] variants plus
/// [`ErrorKind::Protocol`] for wire-layer failures (malformed JSON,
/// unknown routes) that never reach the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    Io,
    Corrupt,
    Schema,
    Type,
    Parse,
    Plan,
    Exec,
    Busy,
    Protocol,
}

impl ErrorKind {
    /// The stable wire string (matches [`BasiliskError::kind`]).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Io => "io",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Schema => "schema",
            ErrorKind::Type => "type",
            ErrorKind::Parse => "parse",
            ErrorKind::Plan => "plan",
            ErrorKind::Exec => "exec",
            ErrorKind::Busy => "busy",
            ErrorKind::Protocol => "protocol",
        }
    }

    /// Parse a wire string produced by [`ErrorKind::as_str`].
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "io" => ErrorKind::Io,
            "corrupt" => ErrorKind::Corrupt,
            "schema" => ErrorKind::Schema,
            "type" => ErrorKind::Type,
            "parse" => ErrorKind::Parse,
            "plan" => ErrorKind::Plan,
            "exec" => ErrorKind::Exec,
            "busy" => ErrorKind::Busy,
            "protocol" => ErrorKind::Protocol,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The typed serving error (see the module docs). Everything a client —
/// local or remote — needs to handle the failure without parsing prose:
/// the class, whether a plain retry can succeed, the parse offset, and
/// the overload snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    pub kind: ErrorKind,
    /// Human-readable detail (the *payload* of the engine error, without
    /// the `kind` prefix — `Display` re-renders the full form).
    pub message: String,
    /// Whether retrying the same request later can succeed unchanged.
    pub retryable: bool,
    /// Byte offset into the SQL text for parse errors.
    pub offset: Option<usize>,
    /// Requests executing when an overload rejection happened.
    pub in_flight: Option<usize>,
    /// Requests queued when an overload rejection happened — the
    /// backpressure hint a client should scale its backoff by.
    pub queue_depth: Option<usize>,
}

impl ServeError {
    /// A wire-layer protocol failure (never produced by the engine).
    pub fn protocol(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: ErrorKind::Protocol,
            message: message.into(),
            retryable: false,
            offset: None,
            in_flight: None,
            queue_depth: None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render exactly like the engine error it wraps so logs agree
        // across the wire (pinned by the envelope property test).
        BasiliskError::from(self.clone()).fmt(f)
    }
}

impl std::error::Error for ServeError {}

impl From<BasiliskError> for ServeError {
    fn from(e: BasiliskError) -> ServeError {
        let retryable = e.is_retryable();
        let (kind, message, offset, in_flight, queue_depth) = match e {
            BasiliskError::Io(e) => (ErrorKind::Io, e.to_string(), None, None, None),
            BasiliskError::Corrupt(m) => (ErrorKind::Corrupt, m, None, None, None),
            BasiliskError::Schema(m) => (ErrorKind::Schema, m, None, None, None),
            BasiliskError::Type(m) => (ErrorKind::Type, m, None, None, None),
            BasiliskError::Parse { message, offset } => {
                (ErrorKind::Parse, message, Some(offset), None, None)
            }
            BasiliskError::Plan(m) => (ErrorKind::Plan, m, None, None, None),
            BasiliskError::Exec(m) => (ErrorKind::Exec, m, None, None, None),
            BasiliskError::Busy {
                in_flight,
                queue_depth,
            } => (
                ErrorKind::Busy,
                String::new(),
                None,
                Some(in_flight),
                Some(queue_depth),
            ),
        };
        ServeError {
            kind,
            message,
            retryable,
            offset,
            in_flight,
            queue_depth,
        }
    }
}

impl From<ServeError> for BasiliskError {
    fn from(e: ServeError) -> BasiliskError {
        match e.kind {
            // `io::Error::other(msg)` displays as the bare message, so
            // Display round-trips even though the concrete source type
            // is lost at the wire boundary.
            ErrorKind::Io => BasiliskError::Io(io::Error::other(e.message)),
            ErrorKind::Corrupt => BasiliskError::Corrupt(e.message),
            ErrorKind::Schema => BasiliskError::Schema(e.message),
            ErrorKind::Type => BasiliskError::Type(e.message),
            ErrorKind::Parse => BasiliskError::Parse {
                message: e.message,
                offset: e.offset.unwrap_or(0),
            },
            ErrorKind::Plan => BasiliskError::Plan(e.message),
            ErrorKind::Exec => BasiliskError::Exec(e.message),
            ErrorKind::Busy => BasiliskError::Busy {
                in_flight: e.in_flight.unwrap_or(0),
                queue_depth: e.queue_depth.unwrap_or(0),
            },
            ErrorKind::Protocol => BasiliskError::Exec(format!("protocol error: {}", e.message)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_engine_error_maps_losslessly() {
        let cases = vec![
            BasiliskError::Io(io::Error::other("disk gone")),
            BasiliskError::Corrupt("bad page".into()),
            BasiliskError::Schema("no such table".into()),
            BasiliskError::Type("int vs str".into()),
            BasiliskError::Parse {
                message: "expected FROM".into(),
                offset: 17,
            },
            BasiliskError::Plan("no join path".into()),
            BasiliskError::Exec("boom".into()),
            BasiliskError::Busy {
                in_flight: 3,
                queue_depth: 12,
            },
        ];
        for original in cases {
            let display = original.to_string();
            let kind = original.kind();
            let retryable = original.is_retryable();
            let serve = ServeError::from(original);
            assert_eq!(serve.kind.as_str(), kind);
            assert_eq!(serve.retryable, retryable);
            assert_eq!(serve.to_string(), display, "Display agrees both ways");
            let back = BasiliskError::from(serve);
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_string(), display);
            assert_eq!(back.is_retryable(), retryable);
        }
    }

    #[test]
    fn busy_carries_the_load_snapshot() {
        let e = ServeError::from(BasiliskError::Busy {
            in_flight: 4,
            queue_depth: 9,
        });
        assert_eq!(e.kind, ErrorKind::Busy);
        assert!(e.retryable);
        assert_eq!(e.in_flight, Some(4));
        assert_eq!(e.queue_depth, Some(9));
    }

    #[test]
    fn parse_offset_survives() {
        let e = ServeError::from(BasiliskError::Parse {
            message: "oops".into(),
            offset: 42,
        });
        assert_eq!(e.offset, Some(42));
        match BasiliskError::from(e) {
            BasiliskError::Parse { offset, .. } => assert_eq!(offset, 42),
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn kind_and_priority_wire_names_roundtrip() {
        for k in [
            ErrorKind::Io,
            ErrorKind::Corrupt,
            ErrorKind::Schema,
            ErrorKind::Type,
            ErrorKind::Parse,
            ErrorKind::Plan,
            ErrorKind::Exec,
            ErrorKind::Busy,
            ErrorKind::Protocol,
        ] {
            assert_eq!(ErrorKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ErrorKind::parse("nope"), None);
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn protocol_errors_fold_into_exec() {
        let e = ServeError::protocol("bad json");
        assert!(!e.retryable);
        let b = BasiliskError::from(e);
        assert_eq!(b.kind(), "exec");
        assert!(b.to_string().contains("protocol error: bad json"));
    }
}
