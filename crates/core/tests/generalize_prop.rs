//! Property tests for tag generalization (Algorithm 1).
//!
//! Soundness: a generalized tag must be *implied* by the original tag —
//! for every complete truth assignment to the atoms that is consistent
//! with the original tag, every assignment in the generalized tag must
//! hold when the predicate tree is evaluated bottom-up with SQL 3VL.

use basilisk_core::{generalize_tag, Tag};
use basilisk_expr::{col, Expr, ExprId, NodeKind, PredicateTree};
use basilisk_types::Truth;
use proptest::prelude::*;
use std::collections::HashMap;

/// Random predicate trees over distinct columns (so no subsumption
/// interaction — this tests pure Boolean propagation).
fn tree_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0u32..12).prop_map(|i| col("t", &format!("c{i}")).gt(0i64));
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn truth_strategy() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::True), Just(Truth::False), Just(Truth::Unknown)]
}

/// Evaluate every node of the tree given complete atom truths.
fn eval_all(tree: &PredicateTree, atoms: &HashMap<ExprId, Truth>) -> HashMap<ExprId, Truth> {
    fn rec(
        tree: &PredicateTree,
        id: ExprId,
        atoms: &HashMap<ExprId, Truth>,
        memo: &mut HashMap<ExprId, Truth>,
    ) -> Truth {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let v = match tree.kind(id) {
            NodeKind::Atom(_) => atoms[&id],
            NodeKind::Not(c) => rec(tree, *c, atoms, memo).not(),
            NodeKind::And(cs) => Truth::all(cs.iter().map(|&c| rec(tree, c, atoms, memo))),
            NodeKind::Or(cs) => Truth::any(cs.iter().map(|&c| rec(tree, c, atoms, memo))),
        };
        memo.insert(id, v);
        v
    }
    let mut memo = HashMap::new();
    rec(tree, tree.root(), atoms, &mut memo);
    memo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every completion consistent with the input tag satisfies
    /// the generalized tag.
    #[test]
    fn generalization_is_sound(
        expr in tree_strategy(),
        picks in proptest::collection::vec((0usize..64, truth_strategy()), 1..6),
        completion in proptest::collection::vec(truth_strategy(), 16),
    ) {
        let tree = PredicateTree::build(&expr);
        let atom_ids = tree.atom_ids();
        // Build the input tag from a few atom assignments.
        let tag = Tag::from_pairs(
            picks
                .iter()
                .map(|(i, t)| (atom_ids[i % atom_ids.len()], *t))
                .collect::<Vec<_>>(),
        );
        let generalized = generalize_tag(&tree, &tag);

        // A completion consistent with the tag: tagged atoms keep their
        // value, others take the random completion.
        let mut atoms: HashMap<ExprId, Truth> = HashMap::new();
        for (j, &id) in atom_ids.iter().enumerate() {
            atoms.insert(id, completion[j % completion.len()]);
        }
        for (id, t) in tag.iter() {
            atoms.insert(id, t);
        }
        let values = eval_all(&tree, &atoms);
        for (id, t) in generalized.iter() {
            prop_assert_eq!(
                values[&id],
                t,
                "generalized assignment {} = {:?} not implied by tag {} (tree {})",
                tree.display(id),
                t,
                tag.display(&tree),
                expr
            );
        }
    }

    /// Idempotence: generalizing twice is a no-op.
    #[test]
    fn generalization_is_idempotent(
        expr in tree_strategy(),
        picks in proptest::collection::vec((0usize..64, truth_strategy()), 1..6),
    ) {
        let tree = PredicateTree::build(&expr);
        let atom_ids = tree.atom_ids();
        let tag = Tag::from_pairs(
            picks
                .iter()
                .map(|(i, t)| (atom_ids[i % atom_ids.len()], *t))
                .collect::<Vec<_>>(),
        );
        let g1 = generalize_tag(&tree, &tag);
        let g2 = generalize_tag(&tree, &g1);
        prop_assert_eq!(g1, g2);
    }

    /// Determinism of root classification: if the generalized tag assigns
    /// the root, every consistent completion evaluates the root to exactly
    /// that value.
    #[test]
    fn root_assignment_is_definitive(
        expr in tree_strategy(),
        picks in proptest::collection::vec((0usize..64, truth_strategy()), 1..8),
        completion in proptest::collection::vec(truth_strategy(), 16),
    ) {
        let tree = PredicateTree::build(&expr);
        let atom_ids = tree.atom_ids();
        let tag = Tag::from_pairs(
            picks
                .iter()
                .map(|(i, t)| (atom_ids[i % atom_ids.len()], *t))
                .collect::<Vec<_>>(),
        );
        let generalized = generalize_tag(&tree, &tag);
        if let Some(root_value) = generalized.get(tree.root()) {
            let mut atoms: HashMap<ExprId, Truth> = HashMap::new();
            for (j, &id) in atom_ids.iter().enumerate() {
                atoms.insert(id, completion[j % completion.len()]);
            }
            for (id, t) in tag.iter() {
                atoms.insert(id, t);
            }
            let values = eval_all(&tree, &atoms);
            prop_assert_eq!(values[&tree.root()], root_value);
        }
    }
}
