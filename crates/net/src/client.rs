//! A tiny blocking client for the wire protocol: one persistent
//! connection, synchronous request/response. Built for tests and the
//! load harness, not as a production driver — but it speaks the full
//! protocol (ad-hoc SQL, prepared statements, stats, typed errors with
//! retryability).

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use basilisk_serve::{ErrorKind, Priority, ServeError};
use basilisk_types::Value;

use crate::http;
use crate::json::Json;
use crate::wire::{self, WireResponse};

/// A remote prepared statement: the server-side handle plus its
/// parameter count. Valid for the lifetime of the listener that issued
/// it (handles survive reconnects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePrepared {
    pub handle: u64,
    pub params: usize,
}

/// A blocking protocol client over one keep-alive connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Tag sent as the `client` field of every request (the fairness
    /// lane this connection's traffic queues in). Empty = anonymous.
    pub client_id: String,
    /// Priority sent with every request.
    pub priority: Priority,
}

fn transport(e: io::Error) -> ServeError {
    ServeError {
        kind: ErrorKind::Io,
        message: format!("transport: {e}"),
        // A torn connection is worth one reconnect-and-retry; the
        // caller decides (unlike engine Io errors, which are not
        // retryable).
        retryable: false,
        offset: None,
        in_flight: None,
        queue_depth: None,
    }
}

impl Client {
    /// Connect to a listener (see
    /// [`Listener::local_addr`](crate::Listener::local_addr)).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            client_id: String::new(),
            priority: Priority::Normal,
        })
    }

    /// Set the fairness-lane tag for subsequent requests.
    pub fn with_client_id(mut self, id: impl Into<String>) -> Client {
        self.client_id = id.into();
        self
    }

    /// Set the priority for subsequent requests.
    pub fn with_priority(mut self, priority: Priority) -> Client {
        self.priority = priority;
        self
    }

    /// One exchange, returning the raw body text on 200. Error replies
    /// are always JSON envelopes regardless of the success content type.
    fn call_raw(&mut self, method: &str, path: &str, body: &Json) -> Result<String, ServeError> {
        let payload = if matches!(body, Json::Null) {
            Vec::new()
        } else {
            body.to_string().into_bytes()
        };
        http::write_request(&mut self.writer, method, path, &payload).map_err(transport)?;
        let response = http::read_response(&mut self.reader).map_err(transport)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ServeError::protocol("response body is not utf-8"))?;
        if response.status == 200 {
            Ok(text.to_string())
        } else {
            // Typed failure: the envelope carries the real error.
            let doc = Json::parse(text)
                .map_err(|e| ServeError::protocol(format!("bad response json: {e}")))?;
            Err(wire::parse_error(&doc)
                .unwrap_or_else(|e| ServeError::protocol(format!("bad error envelope: {e}"))))
        }
    }

    fn call(&mut self, method: &str, path: &str, body: &Json) -> Result<Json, ServeError> {
        let text = self.call_raw(method, path, body)?;
        Json::parse(&text).map_err(|e| ServeError::protocol(format!("bad response json: {e}")))
    }

    fn meta_fields(&self) -> Vec<(String, Json)> {
        let mut fields = Vec::new();
        if !self.client_id.is_empty() {
            fields.push(("client".to_string(), Json::Str(self.client_id.clone())));
        }
        if self.priority != Priority::Normal {
            fields.push((
                "priority".to_string(),
                Json::Str(self.priority.as_str().to_string()),
            ));
        }
        fields
    }

    /// Run ad-hoc SQL.
    pub fn sql(&mut self, sql: &str) -> Result<WireResponse, ServeError> {
        let mut fields = vec![("sql".to_string(), Json::Str(sql.to_string()))];
        fields.extend(self.meta_fields());
        let doc = self.call("POST", "/v1/sql", &Json::Object(fields))?;
        wire::parse_response(&doc).map_err(ServeError::protocol)
    }

    /// Run ad-hoc SQL with server-side tracing; the reply's
    /// [`WireResponse::trace`] carries the span tree.
    pub fn sql_traced(&mut self, sql: &str) -> Result<WireResponse, ServeError> {
        let mut fields = vec![
            ("sql".to_string(), Json::Str(sql.to_string())),
            ("trace".to_string(), Json::Bool(true)),
        ];
        fields.extend(self.meta_fields());
        let doc = self.call("POST", "/v1/sql", &Json::Object(fields))?;
        wire::parse_response(&doc).map_err(ServeError::protocol)
    }

    /// Prepare a statement server-side, returning a reusable handle.
    pub fn prepare(&mut self, sql: &str) -> Result<RemotePrepared, ServeError> {
        let body = Json::Object(vec![("sql".to_string(), Json::Str(sql.to_string()))]);
        let doc = self.call("POST", "/v1/prepare", &body)?;
        let handle = doc
            .get("handle")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServeError::protocol("prepare reply missing handle"))?;
        let params = doc
            .get("params")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServeError::protocol("prepare reply missing params"))?
            as usize;
        Ok(RemotePrepared { handle, params })
    }

    /// Execute a prepared handle with fresh parameter values.
    pub fn execute(
        &mut self,
        stmt: RemotePrepared,
        params: &[Value],
    ) -> Result<WireResponse, ServeError> {
        let mut fields = vec![
            ("handle".to_string(), Json::Int(stmt.handle as i64)),
            (
                "params".to_string(),
                Json::Array(params.iter().map(wire::encode_value).collect()),
            ),
        ];
        fields.extend(self.meta_fields());
        let doc = self.call("POST", "/v1/execute", &Json::Object(fields))?;
        wire::parse_response(&doc).map_err(ServeError::protocol)
    }

    /// Drop a server-side prepared handle.
    pub fn close(&mut self, stmt: RemotePrepared) -> Result<bool, ServeError> {
        let body = Json::Object(vec![("handle".to_string(), Json::Int(stmt.handle as i64))]);
        let doc = self.call("POST", "/v1/close", &body)?;
        Ok(doc.get("closed").and_then(Json::as_bool).unwrap_or(false))
    }

    /// Fetch the server's stats document (see the crate docs).
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.call("GET", "/v1/stats", &Json::Null)
    }

    /// Fetch the Prometheus text exposition (`/v1/metrics`).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.call_raw("GET", "/v1/metrics", &Json::Null)
    }

    /// Fetch the slow-query ring (`/v1/slow`), newest first.
    pub fn slow(&mut self) -> Result<Json, ServeError> {
        self.call("GET", "/v1/slow", &Json::Null)
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<(), ServeError> {
        self.call("GET", "/v1/health", &Json::Null).map(|_| ())
    }
}
