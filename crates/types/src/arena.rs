//! Per-query buffer pool for the word-parallel execution path.
//!
//! Every operator on the tagged hot path works in terms of three scratch
//! shapes: [`TruthMask`]es (predicate evaluation), [`Bitmap`]s (slice
//! bookkeeping, selection vectors) and `Vec<u32>` index buffers (bitmap →
//! position decoding). Before the arena existed each operator allocated
//! these afresh, so `tagged_filter` → `tagged_join` pipelines paid malloc
//! on the hot path even though the buffer shapes are identical from one
//! `execute()` to the next.
//!
//! [`MaskArena`] fixes that with a checkout → evaluate → recycle
//! lifecycle:
//!
//! 1. **checkout** — [`MaskArena::mask`] / [`MaskArena::bitmap`] /
//!    [`MaskArena::indices`] pop a pooled buffer whose capacity already
//!    fits the requested length and reset it in place; only a pool miss
//!    touches the allocator.
//! 2. **evaluate** — the caller owns the buffer as a plain value (no
//!    guard lifetimes), so it can flow through operator boundaries and
//!    even live inside an intermediate `TaggedRelation`'s slice map.
//! 3. **recycle** — [`MaskArena::recycle_mask`] & friends hand the buffer
//!    back once the value is dead (an operator consumed its input, the
//!    executor dropped an intermediate).
//!
//! After one warmup execution the pool holds every shape the query needs,
//! and [`ArenaStats`] proves it: the steady-state test asserts
//! `fresh` checkouts stay at zero from the second execution on. Stats are
//! intentionally part of the public API — they are the observability hook
//! the CI allocation test and the bench harness key off. The arena also
//! carries a [`ColumnPool`] ([`MaskArena::columns`]) for the fourth hot
//! shape — the `Arc`-shared `Vec<u32>` index columns that joins, selects
//! and unions *output* — whose lifecycle (checkout → `Arc`-share →
//! `try_unwrap` reclaim) is documented on [`ColumnPool`] — plus a
//! [`ValuePool`] ([`MaskArena::values`]) for typed *value* buffers
//! (gathered join keys, projected output columns; recycled via
//! `Column::recycle` in the storage crate, with projected result columns
//! deferred by the session) and pooled [`SlotTable`]s
//! ([`MaskArena::slot_table`]) for union deduplication.
//!
//! The arena is deliberately *not* `Sync` (`RefCell`): sharing one pool
//! between threads would serialize on a lock exactly where the hot path
//! is. It **is** `Send`, though, and that is the concurrency model of the
//! morsel-parallel executor (`basilisk-sched`): every worker *owns* a
//! private arena — handed into its scoped thread by `&mut` — so the
//! checkout → evaluate → recycle lifecycle and the `fresh() == 0`
//! steady-state guarantee hold per worker without any locking. Buffers
//! must return to the arena they were checked out of (the scheduler
//! routes morsel results back to their producing worker's arena), which
//! keeps every arena's [`MaskArena::outstanding`] accounting exact.
//! Under `--cfg basilisk_check` that rule is asserted directly: every
//! mask/bitmap checkout tags the buffer's heap storage with this arena's
//! id in the check runtime's ownership registry
//! ([`crate::sync`]), and recycling a buffer into a different arena
//! panics with a replayable finding.

use std::cell::{Cell, RefCell};

use crate::bitmap::{Bitmap, WORD_BITS};
use crate::colpool::ColumnPool;
use crate::slots::SlotTable;
use crate::truthmask::TruthMask;
use crate::valpool::ValuePool;

/// Upper bound on pooled buffers per shape. A query pipeline only ever has
/// a handful of buffers live at once; the cap just keeps a pathological
/// caller from hoarding memory through the pool.
const MAX_POOLED: usize = 256;

/// Checkout counters for one buffer shape: `fresh` counts pool misses
/// (a new heap buffer was created), `reused` counts pool hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub fresh: usize,
    pub reused: usize,
}

/// Snapshot of the arena's checkout counters since the last
/// [`MaskArena::reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    pub masks: PoolStats,
    pub bitmaps: PoolStats,
    pub indices: PoolStats,
    /// `Arc`-shared output index columns (see [`crate::ColumnPool`]).
    pub columns: PoolStats,
    /// Typed value buffers — gathered key columns, projected outputs
    /// (see [`crate::ValuePool`]).
    pub values: PoolStats,
    /// Generation-stamped dedup tables (see [`crate::SlotTable`]).
    pub slot_tables: PoolStats,
    /// Atom-morsels proven whole by a zone map (no data touched) — see
    /// [`MaskArena::note_zone_skip`].
    pub zone_skipped_morsels: u64,
    /// Atom-morsels that had to evaluate data (encoded or decoded).
    pub zone_scanned_morsels: u64,
}

impl ArenaStats {
    /// Accumulate another arena's counters into this snapshot (how the
    /// metrics collectors aggregate across worker and context arenas).
    pub fn merge(&mut self, other: &ArenaStats) {
        for (a, b) in [
            (&mut self.masks, &other.masks),
            (&mut self.bitmaps, &other.bitmaps),
            (&mut self.indices, &other.indices),
            (&mut self.columns, &other.columns),
            (&mut self.values, &other.values),
            (&mut self.slot_tables, &other.slot_tables),
        ] {
            a.fresh += b.fresh;
            a.reused += b.reused;
        }
        self.zone_skipped_morsels += other.zone_skipped_morsels;
        self.zone_scanned_morsels += other.zone_scanned_morsels;
    }

    /// The per-shape counters with their stable metric label names.
    pub fn by_shape(&self) -> [(&'static str, PoolStats); 6] {
        [
            ("masks", self.masks),
            ("bitmaps", self.bitmaps),
            ("indices", self.indices),
            ("columns", self.columns),
            ("values", self.values),
            ("slot_tables", self.slot_tables),
        ]
    }

    /// Total pool misses — zero in steady state.
    pub fn fresh(&self) -> usize {
        self.masks.fresh
            + self.bitmaps.fresh
            + self.indices.fresh
            + self.columns.fresh
            + self.values.fresh
            + self.slot_tables.fresh
    }

    /// Total pool hits.
    pub fn reused(&self) -> usize {
        self.masks.reused
            + self.bitmaps.reused
            + self.indices.reused
            + self.columns.reused
            + self.values.reused
            + self.slot_tables.reused
    }
}

/// A per-query pool of fixed-capacity [`TruthMask`] / [`Bitmap`] /
/// `Vec<u32>` buffers (see the module docs for the lifecycle).
#[derive(Default)]
pub struct MaskArena {
    masks: RefCell<Vec<TruthMask>>,
    bitmaps: RefCell<Vec<Bitmap>>,
    indices: RefCell<Vec<Vec<u32>>>,
    columns: ColumnPool,
    values: ValuePool,
    slot_tables: RefCell<Vec<SlotTable>>,
    mask_fresh: Cell<usize>,
    mask_reused: Cell<usize>,
    bitmap_fresh: Cell<usize>,
    bitmap_reused: Cell<usize>,
    index_fresh: Cell<usize>,
    index_reused: Cell<usize>,
    slot_fresh: Cell<usize>,
    slot_reused: Cell<usize>,
    zone_skipped: Cell<u64>,
    zone_scanned: Cell<u64>,
    live: Cell<usize>,
    /// Identity in the `basilisk_check` buffer-ownership registry
    /// (lazily assigned; 0 = not yet registered).
    #[cfg(basilisk_check)]
    check_id: Cell<u64>,
}

impl MaskArena {
    pub fn new() -> MaskArena {
        MaskArena::default()
    }

    /// This arena's id in the check runtime's ownership registry,
    /// assigned on first checkout.
    #[cfg(basilisk_check)]
    fn check_id(&self) -> u64 {
        if self.check_id.get() == 0 {
            self.check_id.set(crate::sync::check::new_arena_id());
        }
        self.check_id.get()
    }

    /// The sibling pool for `Arc`-shared output index columns. It lives
    /// inside the arena so every operator that already threads a
    /// `&MaskArena` reaches it without new plumbing, and so
    /// [`Self::stats`] covers all four buffer shapes at once.
    pub fn columns(&self) -> &ColumnPool {
        &self.columns
    }

    /// The pool for typed *value* buffers (gathered key columns,
    /// projected outputs) — see [`ValuePool`].
    pub fn values(&self) -> &ValuePool {
        &self.values
    }

    /// Check out a [`SlotTable`] ready for a probing session over
    /// `entries` distinct values. Pooled tables keep their slot-array
    /// capacity, so repeated unions over similar cardinalities pay a
    /// generation bump instead of an O(capacity) clear.
    pub fn slot_table(&self, entries: usize) -> SlotTable {
        self.live.set(self.live.get() + 1);
        let mut table = match self.slot_tables.borrow_mut().pop() {
            Some(t) => {
                self.slot_reused.set(self.slot_reused.get() + 1);
                t
            }
            None => {
                self.slot_fresh.set(self.slot_fresh.get() + 1);
                SlotTable::new()
            }
        };
        table.begin(entries);
        table
    }

    /// Return a slot table to the pool (its capacity stays warm).
    pub fn recycle_slot_table(&self, table: SlotTable) {
        self.live.set(self.live.get().saturating_sub(1));
        let mut pool = self.slot_tables.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(table);
        }
    }

    /// Check out an all-`False` mask of `len` lanes.
    pub fn mask(&self, len: usize) -> TruthMask {
        self.live.set(self.live.get() + 1);
        let words = len.div_ceil(WORD_BITS);
        let pooled = take_fitting(&mut self.masks.borrow_mut(), words, |m| m.words_capacity());
        let m = match pooled {
            Some(mut m) => {
                self.mask_reused.set(self.mask_reused.get() + 1);
                m.reset(len);
                m
            }
            None => {
                self.mask_fresh.set(self.mask_fresh.get() + 1);
                TruthMask::new_false(len)
            }
        };
        #[cfg(basilisk_check)]
        crate::sync::check::buffer_produced(m.check_key(), self.check_id());
        m
    }

    /// Check out an all-zeros bitmap of `len` bits.
    pub fn bitmap(&self, len: usize) -> Bitmap {
        self.live.set(self.live.get() + 1);
        let words = len.div_ceil(WORD_BITS);
        let pooled = take_fitting(&mut self.bitmaps.borrow_mut(), words, |b| {
            b.words_capacity()
        });
        let b = match pooled {
            Some(mut b) => {
                self.bitmap_reused.set(self.bitmap_reused.get() + 1);
                b.reset(len);
                b
            }
            None => {
                self.bitmap_fresh.set(self.bitmap_fresh.get() + 1);
                Bitmap::new(len)
            }
        };
        #[cfg(basilisk_check)]
        crate::sync::check::buffer_produced(b.check_key(), self.check_id());
        b
    }

    /// Check out an all-ones bitmap of `len` bits.
    pub fn bitmap_ones(&self, len: usize) -> Bitmap {
        let mut b = self.bitmap(len);
        b.fill_ones();
        b
    }

    /// Check out a copy of `src`.
    pub fn bitmap_copy(&self, src: &Bitmap) -> Bitmap {
        let mut b = self.bitmap(src.len());
        b.copy_from(src);
        b
    }

    /// Check out an empty `u32` index buffer (its capacity is whatever its
    /// previous life grew it to, so steady-state pushes never reallocate).
    pub fn indices(&self) -> Vec<u32> {
        self.live.set(self.live.get() + 1);
        match self.indices.borrow_mut().pop() {
            Some(mut v) => {
                self.index_reused.set(self.index_reused.get() + 1);
                v.clear();
                v
            }
            None => {
                self.index_fresh.set(self.index_fresh.get() + 1);
                Vec::new()
            }
        }
    }

    /// Return a mask to the pool.
    pub fn recycle_mask(&self, mask: TruthMask) {
        #[cfg(basilisk_check)]
        crate::sync::check::buffer_recycled(mask.check_key(), self.check_id(), "mask");
        self.live.set(self.live.get().saturating_sub(1));
        let mut pool = self.masks.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(mask);
        }
    }

    /// Return a bitmap to the pool.
    pub fn recycle_bitmap(&self, bitmap: Bitmap) {
        #[cfg(basilisk_check)]
        crate::sync::check::buffer_recycled(bitmap.check_key(), self.check_id(), "bitmap");
        self.live.set(self.live.get().saturating_sub(1));
        let mut pool = self.bitmaps.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(bitmap);
        }
    }

    /// Return an index buffer to the pool.
    pub fn recycle_indices(&self, indices: Vec<u32>) {
        self.live.set(self.live.get().saturating_sub(1));
        let mut pool = self.indices.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(indices);
        }
    }

    /// Record one atom-morsel whose whole mask range was filled from a
    /// zone map without touching column data. The evaluator calls this on
    /// the arena it is already holding, so the counter inherits the
    /// arena's no-locking concurrency model (per-worker, merged by the
    /// same collectors that aggregate [`ArenaStats`]).
    pub fn note_zone_skip(&self) {
        self.zone_skipped.set(self.zone_skipped.get() + 1);
    }

    /// Record one atom-morsel that evaluated data (encoded kernel or
    /// decoded fallback) because its zone map could not decide it.
    pub fn note_zone_scan(&self) {
        self.zone_scanned.set(self.zone_scanned.get() + 1);
    }

    /// Checkout counters since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            masks: PoolStats {
                fresh: self.mask_fresh.get(),
                reused: self.mask_reused.get(),
            },
            bitmaps: PoolStats {
                fresh: self.bitmap_fresh.get(),
                reused: self.bitmap_reused.get(),
            },
            indices: PoolStats {
                fresh: self.index_fresh.get(),
                reused: self.index_reused.get(),
            },
            columns: self.columns.stats(),
            values: self.values.stats(),
            slot_tables: PoolStats {
                fresh: self.slot_fresh.get(),
                reused: self.slot_reused.get(),
            },
            zone_skipped_morsels: self.zone_skipped.get(),
            zone_scanned_morsels: self.zone_scanned.get(),
        }
    }

    /// Zero the checkout counters (the pools themselves stay warm) —
    /// called between executions to measure steady-state behaviour.
    pub fn reset_stats(&self) {
        self.mask_fresh.set(0);
        self.mask_reused.set(0);
        self.bitmap_fresh.set(0);
        self.bitmap_reused.set(0);
        self.index_fresh.set(0);
        self.index_reused.set(0);
        self.slot_fresh.set(0);
        self.slot_reused.set(0);
        self.zone_skipped.set(0);
        self.zone_scanned.set(0);
        self.columns.reset_stats();
        self.values.reset_stats();
    }

    /// Number of buffers currently parked in the pools.
    pub fn pooled(&self) -> usize {
        self.masks.borrow().len()
            + self.bitmaps.borrow().len()
            + self.indices.borrow().len()
            + self.slot_tables.borrow().len()
            + self.columns.pooled()
            + self.values.pooled()
    }

    /// Buffers checked out and not yet recycled (or, for result columns,
    /// deferred) across all four shapes. Returns to zero once an
    /// execution fully unwinds — including on error paths, which the
    /// leak tests pin.
    pub fn outstanding(&self) -> usize {
        self.live.get() + self.columns.outstanding() + self.values.outstanding()
    }
}

/// Pop the **best-fitting** pooled buffer: the smallest capacity ≥
/// `words` (most recently recycled on ties). First-fit would let a small
/// checkout steal a big buffer and force the next big checkout to
/// allocate — best-fit keeps mixed-length pipelines (e.g. filter on a 4k
/// table feeding a join over 6k tuples) allocation-free from the second
/// run on.
fn take_fitting<T>(pool: &mut Vec<T>, words: usize, capacity: impl Fn(&T) -> usize) -> Option<T> {
    let mut best: Option<(usize, usize)> = None; // (index, capacity)
    for (i, item) in pool.iter().enumerate().rev() {
        let cap = capacity(item);
        if cap >= words && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| pool.swap_remove(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Truth;

    #[test]
    fn checkout_recycle_reuses_buffers() {
        let arena = MaskArena::new();
        let m = arena.mask(100);
        let b = arena.bitmap(100);
        assert_eq!(arena.stats().fresh(), 2);
        arena.recycle_mask(m);
        arena.recycle_bitmap(b);
        arena.reset_stats();

        let m = arena.mask(100);
        let b = arena.bitmap(64); // smaller fits too
        assert_eq!(arena.stats().fresh(), 0);
        assert_eq!(arena.stats().reused(), 2);
        assert_eq!(m.len(), 100);
        assert_eq!(b.len(), 64);
        assert_eq!(m.count_false(), 100, "recycled mask comes back all-false");
        assert!(b.is_zero(), "recycled bitmap comes back all-zeros");
    }

    #[test]
    fn dirty_buffers_reset_on_checkout() {
        let arena = MaskArena::new();
        let mut m = arena.mask(70);
        m.set(69, Truth::True);
        m.set(3, Truth::Unknown);
        arena.recycle_mask(m);
        let mut b = arena.bitmap_ones(70);
        assert_eq!(b.count_ones(), 70);
        b.set(0);
        arena.recycle_bitmap(b);

        let m = arena.mask(65);
        assert_eq!(m.count_false(), 65);
        let b = arena.bitmap(65);
        assert!(b.is_zero());
    }

    #[test]
    fn undersized_pool_entries_are_skipped() {
        let arena = MaskArena::new();
        arena.recycle_bitmap(Bitmap::new(10));
        arena.reset_stats();
        // 10 bits = 1 word; 200 bits needs 4 → miss.
        let big = arena.bitmap(200);
        assert_eq!(arena.stats().bitmaps.fresh, 1);
        arena.recycle_bitmap(big);
        // Now a 130-bit checkout fits in the 200-bit buffer.
        let mid = arena.bitmap(130);
        assert_eq!(arena.stats().bitmaps.reused, 1);
        assert_eq!(mid.len(), 130);
        // The small one is still pooled and serves small requests.
        let small = arena.bitmap(8);
        assert_eq!(arena.stats().bitmaps.reused, 2);
        assert_eq!(small.len(), 8);
    }

    #[test]
    fn indices_keep_capacity() {
        let arena = MaskArena::new();
        let mut v = arena.indices();
        v.extend(0..1000);
        let cap = v.capacity();
        arena.recycle_indices(v);
        arena.reset_stats();
        let v = arena.indices();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "capacity survives the pool round-trip");
        assert_eq!(arena.stats().indices.reused, 1);
    }

    #[test]
    fn copy_and_ones_checkouts() {
        let arena = MaskArena::new();
        let src = Bitmap::from_indices(130, [0usize, 64, 129]);
        let c = arena.bitmap_copy(&src);
        assert_eq!(c, src);
        let ones = arena.bitmap_ones(70);
        assert_eq!(ones.count_ones(), 70);
    }

    #[test]
    fn pool_respects_cap() {
        let arena = MaskArena::new();
        for _ in 0..(MAX_POOLED + 10) {
            arena.recycle_indices(Vec::new());
        }
        assert!(arena.pooled() <= MAX_POOLED);
    }
}
