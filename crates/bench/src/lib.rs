//! Shared harness code for the figure-regeneration binaries.
//!
//! Each binary regenerates one figure of the paper's §5 evaluation and
//! prints the same rows/series the paper plots. Absolute numbers differ
//! from the paper (different hardware, synthetic data), but the *shape* —
//! who wins, by roughly what factor, where the crossovers fall — is the
//! reproduction target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use std::time::Duration;

use basilisk::{Catalog, PlannerKind, Query, QuerySession};
use basilisk_types::Result;

pub mod workload;

/// Timing of one planner on one query, averaged over repetitions (the
/// paper runs each query 5× and averages).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub planning: Duration,
    pub execution: Duration,
    pub rows: usize,
}

impl Measurement {
    pub fn total(&self) -> Duration {
        self.planning + self.execution
    }

    pub fn total_secs(&self) -> f64 {
        self.total().as_secs_f64()
    }

    pub fn exec_secs(&self) -> f64 {
        self.execution.as_secs_f64()
    }
}

/// Run one planner `reps` times on a query and average the timings.
/// The result cardinality is also returned and asserted stable across
/// repetitions.
pub fn measure(
    catalog: &Catalog,
    query: &Query,
    kind: PlannerKind,
    reps: usize,
) -> Result<Measurement> {
    let session = QuerySession::new(catalog, query.clone())?;
    let mut planning = Duration::ZERO;
    let mut execution = Duration::ZERO;
    let mut rows = None;
    for _ in 0..reps.max(1) {
        let (out, t) = session.run(kind)?;
        planning += t.planning;
        execution += t.execution;
        match rows {
            None => rows = Some(out.count()),
            Some(r) => assert_eq!(r, out.count(), "unstable result cardinality"),
        }
    }
    let n = reps.max(1) as u32;
    Ok(Measurement {
        planning: planning / n,
        execution: execution / n,
        rows: rows.unwrap_or(0),
    })
}

/// Speedup of `denominator` over `numerator`…  more precisely: the paper
/// plots `baseline / tagged`, > 1 meaning tagged execution is faster.
pub fn speedup(baseline: &Measurement, tagged: &Measurement) -> f64 {
    baseline.total_secs() / tagged.total_secs().max(1e-9)
}

/// Geometric-mean-free summary stats used in the key-takeaway lines.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Parse `--flag value` style options from `std::env::args`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn get(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    pub fn get_f64(&self, flag: &str, default: f64) -> f64 {
        self.get(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
            .unwrap_or(default)
    }

    pub fn get_usize(&self, flag: &str, default: usize) -> usize {
        self.get(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
            .unwrap_or(default)
    }

    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk::col;
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    #[test]
    fn measure_and_speedup() {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("a", DataType::Float);
        for i in 0..500i64 {
            b.push_row(vec![i.into(), ((i % 100) as f64 / 100.0).into()])
                .unwrap();
        }
        cat.add_table(b.finish().unwrap()).unwrap();
        let q = Query::new(vec![("t".into(), "t".into())]).filter(col("t", "a").lt(0.5));
        let m = measure(&cat, &q, PlannerKind::TCombined, 2).unwrap();
        assert_eq!(m.rows, 250);
        assert!(m.total() >= m.planning);
        let m2 = Measurement {
            planning: Duration::from_millis(1),
            execution: Duration::from_millis(9),
            rows: 250,
        };
        let m1 = Measurement {
            planning: Duration::from_millis(1),
            execution: Duration::from_millis(4),
            rows: 250,
        };
        assert!((speedup(&m2, &m1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0]), 3.0);
        assert_eq!(min(&[1.0, 3.0]), 1.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
