//! Tag-map construction (§3.3) and the naive strategy (§3.1).
//!
//! The planner — not the engine — decides which tags exist and how each
//! operator transforms them. Two precepts drive the §3.3 construction:
//!
//! * **Precept 1** — never generate a tag whose generalization assigns
//!   *false* (or, under three-valued logic, *unknown*) to the root: those
//!   tuples can never reach the output, so drop them at the earliest
//!   operator.
//! * **Precept 2** — do not apply a filter to a slice it cannot refine:
//!   if every instance of the predicate has an assigned ancestor in the
//!   input tag (or the atom's value is already implied by subsumption),
//!   pass the slice through untouched.
//!
//! The §3.1 naive strategy (no generalization, no precepts) is kept behind
//! [`TagMapStrategy::Naive`] for the ablation benchmarks — it demonstrates
//! the exponential tag blowup the paper warns about.

use std::cell::RefCell;
use std::collections::HashMap;

use basilisk_expr::subsume::Closure;
use basilisk_expr::{ExprId, PredicateTree};
use basilisk_types::Truth;

use crate::generalize::{generalize_tag, generalize_tag_closed, root_truth};
use crate::tag::Tag;

/// How tag maps are built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagMapStrategy {
    /// §3.3: tag generalization + both precepts. `use_closure` adds the
    /// atom-subsumption enrichment (`year>2000 ⇒ year>1980`); disabling it
    /// isolates that design choice for the ablation bench.
    Generalized { use_closure: bool },
    /// §3.1: every filter emits both outcomes for every input tag, joins
    /// take the full Cartesian product, nothing is pruned until projection.
    Naive,
}

/// One entry of a filter's tag map (§2.2):
/// `⟨in⟩ → {T: ⟨pos⟩, F: ⟨neg⟩, U: ⟨unk⟩}` with each output optional.
/// An entry with *no* outputs means the slice is provably dead (Precept 1
/// killed every branch): the executor drops it without evaluating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterTagEntry {
    pub input: Tag,
    pub pos: Option<Tag>,
    pub neg: Option<Tag>,
    pub unk: Option<Tag>,
}

/// The tag map of one filter operator.
///
/// Construct via [`FilterTagMap::new`]: a hashed input-tag index is built
/// alongside the entry list so the executor's per-slice dispatch
/// ([`FilterTagMap::entry_for`]) is O(1) instead of a linear scan over
/// entries — tag maps on wide disjunctions can carry dozens of entries.
#[derive(Debug, Clone)]
pub struct FilterTagMap {
    /// The predicate-tree node this filter evaluates.
    pub node: ExprId,
    /// Kept private (with [`Self::entries`] as the read path) so the entry
    /// list cannot drift out of sync with the hashed index — build a new
    /// map instead of mutating.
    entries: Vec<FilterTagEntry>,
    index: basilisk_exec::FxHashMap<Tag, u32>,
}

impl FilterTagMap {
    pub fn new(node: ExprId, entries: Vec<FilterTagEntry>) -> FilterTagMap {
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.input.clone(), i as u32))
            .collect();
        FilterTagMap {
            node,
            entries,
            index,
        }
    }

    /// The entries, in construction order.
    pub fn entries(&self) -> &[FilterTagEntry] {
        &self.entries
    }

    pub fn entry_for(&self, tag: &Tag) -> Option<&FilterTagEntry> {
        self.index.get(tag).map(|&i| &self.entries[i as usize])
    }
}

/// One entry of a join's tag map (§2.3):
/// `(⟨left⟩, ⟨right⟩) → ⟨out⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTagEntry {
    pub left: Tag,
    pub right: Tag,
    pub out: Tag,
}

/// The tag map of one join operator. Slice pairings without an entry are
/// never joined; slices without any entry are discarded (§2.3).
#[derive(Debug, Clone, Default)]
pub struct JoinTagMap {
    pub entries: Vec<JoinTagEntry>,
}

/// The tag set a projection admits (§2.4).
#[derive(Debug, Clone, Default)]
pub struct ProjectionTags {
    pub allowed: Vec<Tag>,
}

/// Memoization table: one `RefCell<HashMap>` per derived quantity.
type Memo<K, V> = RefCell<HashMap<K, V>>;

/// Plan-time tag-map builder for one query's predicate tree.
///
/// Generalization, redundancy checks and join-pair outputs are memoized:
/// planners (especially TPullup's pull-one-node search and TCombined's
/// four-way comparison) re-derive the same tags thousands of times while
/// costing candidate plans, and the closure fixpoint is the hot path.
/// Caches are per-builder, i.e. per planning invocation — matching how
/// the paper measures planning time per run.
pub struct TagMapBuilder<'t> {
    tree: &'t PredicateTree,
    closure: Option<Closure<'t>>,
    strategy: TagMapStrategy,
    three_valued: bool,
    finish_cache: Memo<Tag, Option<Tag>>,
    redundant_cache: Memo<(ExprId, Tag), bool>,
    pair_cache: Memo<(Tag, Tag), Option<Tag>>,
    root_cache: Memo<Tag, Option<Truth>>,
    filter_map_cache: Memo<(ExprId, Vec<Tag>), FilterTagMap>,
    join_map_cache: Memo<(Vec<Tag>, Vec<Tag>), JoinTagMap>,
}

impl<'t> TagMapBuilder<'t> {
    pub fn new(tree: &'t PredicateTree, strategy: TagMapStrategy) -> Self {
        let closure = match strategy {
            TagMapStrategy::Generalized { use_closure: true } => Some(Closure::new(tree)),
            _ => None,
        };
        TagMapBuilder {
            tree,
            closure,
            strategy,
            three_valued: false,
            finish_cache: RefCell::new(HashMap::new()),
            redundant_cache: RefCell::new(HashMap::new()),
            pair_cache: RefCell::new(HashMap::new()),
            root_cache: RefCell::new(HashMap::new()),
            filter_map_cache: RefCell::new(HashMap::new()),
            join_map_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Enable unknown outputs on filters (§3.4). Off by default: workloads
    /// without NULLs never produce unknown, and the extra map entries are
    /// pure overhead.
    pub fn with_three_valued(mut self, enabled: bool) -> Self {
        self.three_valued = enabled;
        self
    }

    pub fn tree(&self) -> &PredicateTree {
        self.tree
    }

    pub fn strategy(&self) -> TagMapStrategy {
        self.strategy
    }

    /// Does Precept 1 reject this truth value at the root?
    fn root_value_dead(&self, v: Truth) -> bool {
        match v {
            Truth::False => true,
            Truth::Unknown => true, // §3.4 change 4
            Truth::True => false,
        }
    }

    /// Generalize (per strategy); `None` means the tag is unsatisfiable or
    /// its root assignment is dead — either way the slice never reaches
    /// the output. Memoized.
    fn finish_tag(&self, tag: Tag) -> Option<Tag> {
        match self.strategy {
            TagMapStrategy::Naive => Some(tag),
            TagMapStrategy::Generalized { .. } => {
                if let Some(hit) = self.finish_cache.borrow().get(&tag) {
                    return hit.clone();
                }
                let result = (|| {
                    let g = generalize_tag_closed(self.tree, self.closure.as_ref(), &tag)?;
                    if let Some(v) = g.get(self.tree.root()) {
                        if self.root_value_dead(v) {
                            return None;
                        }
                    }
                    Some(g)
                })();
                self.finish_cache.borrow_mut().insert(tag, result.clone());
                result
            }
        }
    }

    /// Is applying `node` to a slice tagged `input` pointless (Precept 2 /
    /// subsumption)? Memoized.
    fn filter_redundant(&self, input: &Tag, node: ExprId) -> bool {
        if input.get(node).is_some() {
            return true;
        }
        let key = (node, input.clone());
        if let Some(&hit) = self.redundant_cache.borrow().get(&key) {
            return hit;
        }
        // Precept 2: every instance has an assigned ancestor. Subsumption:
        // the atom's outcome is already implied (`{year>2000 = T}` never
        // needs `year>1980` applied).
        let result = self.tree.is_covered(node, &|id| input.contains(id))
            || match &self.closure {
                Some(closure) if self.tree.is_atom(node) => {
                    closure.implied(&input.to_map(), node).is_some()
                }
                _ => false,
            };
        self.redundant_cache.borrow_mut().insert(key, result);
        result
    }

    /// Build a filter's tag map for the given input tag set (§3.3).
    /// Memoized on `(node, input tag set)` — candidate plans share
    /// unchanged subtrees, so planners hit this cache constantly.
    pub fn filter_map(&self, node: ExprId, input_tags: &[Tag]) -> FilterTagMap {
        let key = (node, input_tags.to_vec());
        if let Some(hit) = self.filter_map_cache.borrow().get(&key) {
            return hit.clone();
        }
        let map = self.filter_map_uncached(node, input_tags);
        self.filter_map_cache.borrow_mut().insert(key, map.clone());
        map
    }

    fn filter_map_uncached(&self, node: ExprId, input_tags: &[Tag]) -> FilterTagMap {
        let mut entries = Vec::new();
        for input in input_tags {
            match self.strategy {
                TagMapStrategy::Naive => {
                    let pos = Some(input.with(node, Truth::True));
                    let neg = Some(input.with(node, Truth::False));
                    let unk = self.three_valued.then(|| input.with(node, Truth::Unknown));
                    entries.push(FilterTagEntry {
                        input: input.clone(),
                        pos,
                        neg,
                        unk,
                    });
                }
                TagMapStrategy::Generalized { .. } => {
                    if self.filter_redundant(input, node) {
                        continue; // pass-through, no entry
                    }
                    let pos = self.finish_tag(input.with(node, Truth::True));
                    let neg = self.finish_tag(input.with(node, Truth::False));
                    let unk = if self.three_valued {
                        self.finish_tag(input.with(node, Truth::Unknown))
                    } else {
                        None
                    };
                    entries.push(FilterTagEntry {
                        input: input.clone(),
                        pos,
                        neg,
                        unk,
                    });
                }
            }
        }
        FilterTagMap::new(node, entries)
    }

    /// The tag set flowing out of a filter: outputs of matched entries
    /// plus untouched pass-through tags, deduplicated in order.
    pub fn filter_output_tags(&self, map: &FilterTagMap, input_tags: &[Tag]) -> Vec<Tag> {
        let mut out: Vec<Tag> = Vec::new();
        let mut push = |t: &Tag| {
            if !out.contains(t) {
                out.push(t.clone());
            }
        };
        for input in input_tags {
            match map.entry_for(input) {
                None => push(input),
                Some(e) => {
                    if let Some(t) = &e.pos {
                        push(t);
                    }
                    if let Some(t) = &e.neg {
                        push(t);
                    }
                    if let Some(t) = &e.unk {
                        push(t);
                    }
                }
            }
        }
        out
    }

    /// Build a join's tag map over the Cartesian product of input tag
    /// sets, keeping only pairings that can still reach the output (§3.3).
    /// Memoized on the input tag sets.
    pub fn join_map(&self, left_tags: &[Tag], right_tags: &[Tag]) -> JoinTagMap {
        let key = (left_tags.to_vec(), right_tags.to_vec());
        if let Some(hit) = self.join_map_cache.borrow().get(&key) {
            return hit.clone();
        }
        let map = self.join_map_uncached(left_tags, right_tags);
        self.join_map_cache.borrow_mut().insert(key, map.clone());
        map
    }

    fn join_map_uncached(&self, left_tags: &[Tag], right_tags: &[Tag]) -> JoinTagMap {
        let mut entries = Vec::new();
        for l in left_tags {
            for r in right_tags {
                let key = (l.clone(), r.clone());
                let cached = self.pair_cache.borrow().get(&key).cloned();
                let out = match cached {
                    Some(hit) => hit,
                    None => {
                        // Conflicting unions are impossible pairings;
                        // root-dead outputs are Precept 1 discards.
                        let computed = l.union(r).and_then(|u| self.finish_tag(u));
                        self.pair_cache.borrow_mut().insert(key, computed.clone());
                        computed
                    }
                };
                if let Some(out) = out {
                    entries.push(JoinTagEntry {
                        left: l.clone(),
                        right: r.clone(),
                        out,
                    });
                }
            }
        }
        JoinTagMap { entries }
    }

    /// Output tag set of a join map, deduplicated in order.
    pub fn join_output_tags(&self, map: &JoinTagMap) -> Vec<Tag> {
        let mut out: Vec<Tag> = Vec::new();
        for e in &map.entries {
            if !out.contains(&e.out) {
                out.push(e.out.clone());
            }
        }
        out
    }

    /// The projection's allowed tag set: tags that determine the root to
    /// *true* (§2.4 / §3.3 "restrict the set of allowed tags to only the
    /// tag with a true assignment to the root node").
    pub fn projection_tags(&self, tags: &[Tag]) -> ProjectionTags {
        let closure = match self.strategy {
            TagMapStrategy::Naive => None,
            _ => self.closure.as_ref(),
        };
        let allowed = tags
            .iter()
            .filter(|t| {
                if let Some(hit) = self.root_cache.borrow().get(*t) {
                    return *hit == Some(Truth::True);
                }
                let v = root_truth(self.tree, closure, t);
                self.root_cache.borrow_mut().insert((*t).clone(), v);
                v == Some(Truth::True)
            })
            .cloned()
            .collect();
        ProjectionTags { allowed }
    }

    /// Convenience for tests/diagnostics: generalize one tag under this
    /// builder's settings.
    pub fn generalize(&self, tag: &Tag) -> Option<Tag> {
        match self.strategy {
            TagMapStrategy::Naive => Some(generalize_tag(self.tree, tag)),
            TagMapStrategy::Generalized { .. } => {
                generalize_tag_closed(self.tree, self.closure.as_ref(), tag)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_expr::{and, col, or, Expr};

    /// Query 1 plus handles to its parts.
    struct Q1 {
        tree: PredicateTree,
        p1: ExprId, // t.year > 2000
        p2: ExprId, // t.year > 1980
        p3: ExprId, // mi.score > '8.0'
        p4: ExprId, // mi.score > '7.0'
        a1: ExprId, // p1 ∧ p4
        #[allow(dead_code)]
        a2: ExprId, // p2 ∧ p3
    }

    fn query1() -> Q1 {
        let e: Expr = or(vec![
            and(vec![
                col("t", "year").gt(2000i64),
                col("mi", "score").gt("7.0"),
            ]),
            and(vec![
                col("t", "year").gt(1980i64),
                col("mi", "score").gt("8.0"),
            ]),
        ]);
        let tree = PredicateTree::build(&e);
        let find = |s: &str| {
            tree.atom_ids()
                .into_iter()
                .find(|&id| tree.display(id) == s)
                .unwrap()
        };
        let p1 = find("t.year > 2000");
        let p2 = find("t.year > 1980");
        let p3 = find("mi.score > '8.0'");
        let p4 = find("mi.score > '7.0'");
        let a1 = tree.parents(p1)[0];
        let a2 = tree.parents(p2)[0];
        Q1 {
            tree,
            p1,
            p2,
            p3,
            p4,
            a1,
            a2,
        }
    }

    fn builder(q: &Q1) -> TagMapBuilder<'_> {
        TagMapBuilder::new(&q.tree, TagMapStrategy::Generalized { use_closure: true })
    }

    /// The full §2.2/§2.3 walkthrough of Query 1 at the tag level.
    #[test]
    fn query1_filter_chain_matches_paper() {
        let q = query1();
        let b = builder(&q);

        // Filter P1 over the base [{}".
        let m1 = b.filter_map(q.p1, &[Tag::empty()]);
        assert_eq!(m1.entries.len(), 1);
        let e = &m1.entries[0];
        // pos: {P1=T} enriched by subsumption with P2=T.
        let pos = e.pos.as_ref().unwrap();
        assert_eq!(pos.get(q.p1), Some(Truth::True));
        assert_eq!(pos.get(q.p2), Some(Truth::True));
        // neg: {P1=F} generalizes to {A1=F} (the §3.3 example).
        let neg = e.neg.as_ref().unwrap();
        assert_eq!(neg, &Tag::from_pairs([(q.a1, Truth::False)]));

        let tags1 = b.filter_output_tags(&m1, &[Tag::empty()]);
        assert_eq!(tags1.len(), 2);

        // Filter P2: the pos slice already knows P2 (subsumption) →
        // pass-through; only {A1=F} gets an entry.
        let m2 = b.filter_map(q.p2, &tags1);
        assert_eq!(m2.entries.len(), 1);
        let e = &m2.entries[0];
        assert_eq!(e.input, Tag::from_pairs([(q.a1, Truth::False)]));
        // pos: {A1=F, P2=T}.
        assert_eq!(
            e.pos.as_ref().unwrap(),
            &Tag::from_pairs([(q.a1, Truth::False), (q.p2, Truth::True)])
        );
        // neg: P2=F ⇒ (closure) P1=F ⇒ A2=F ∧ A1=F ⇒ root=F → dropped
        // (Precept 1: "the planner should omit the negative output tag").
        assert_eq!(e.neg, None);

        let left_tags = b.filter_output_tags(&m2, &tags1);
        assert_eq!(left_tags.len(), 2);

        // Right side: P3 then P4 over mi's base.
        let m3 = b.filter_map(q.p3, &[Tag::empty()]);
        let tags3 = b.filter_output_tags(&m3, &[Tag::empty()]);
        let m4 = b.filter_map(q.p4, &tags3);
        assert_eq!(m4.entries.len(), 1, "{{P3=T}} slice passes through");
        let right_tags = b.filter_output_tags(&m4, &tags3);
        assert_eq!(right_tags.len(), 2);

        // Join: 2×2 pairings, one (both clauses dead) omitted — exactly
        // the entry the paper's §2.3 example leaves out.
        let jm = b.join_map(&left_tags, &right_tags);
        assert_eq!(jm.entries.len(), 3);
        for e in &jm.entries {
            assert_eq!(
                e.out,
                Tag::from_pairs([(q.tree.root(), Truth::True)]),
                "every surviving pairing fully satisfies Query 1"
            );
        }
        let outs = b.join_output_tags(&jm);
        assert_eq!(outs.len(), 1);

        // Projection admits the root-true tag.
        let proj = b.projection_tags(&outs);
        assert_eq!(proj.allowed, outs);
    }

    /// Without the subsumption closure, the engine does strictly more
    /// work: P2 must be applied to the {P1=T} slice too.
    #[test]
    fn without_closure_more_entries() {
        let q = query1();
        let b = TagMapBuilder::new(&q.tree, TagMapStrategy::Generalized { use_closure: false });
        let m1 = b.filter_map(q.p1, &[Tag::empty()]);
        let tags1 = b.filter_output_tags(&m1, &[Tag::empty()]);
        // pos tag is plain {P1=T} (no enrichment).
        assert!(tags1.contains(&Tag::from_pairs([(q.p1, Truth::True)])));
        let m2 = b.filter_map(q.p2, &tags1);
        assert_eq!(
            m2.entries.len(),
            2,
            "both slices get entries without subsumption"
        );
    }

    /// Precept 2 proper (ancestor coverage, no closure needed): applying
    /// P4 to a slice tagged {A1=F} where P4's only instance sits under A1…
    /// wait — P4 is under A1 only, so {A1=F} covers it.
    #[test]
    fn precept2_coverage_skips() {
        let q = query1();
        let b = TagMapBuilder::new(&q.tree, TagMapStrategy::Generalized { use_closure: false });
        let input = Tag::from_pairs([(q.a1, Truth::False)]);
        let m = b.filter_map(q.p4, std::slice::from_ref(&input));
        assert!(
            m.entries.is_empty(),
            "P4's only instance is under A1, which is assigned"
        );
        // But P3 (under A2) is NOT covered by {A1=F}.
        let m = b.filter_map(q.p3, &[input]);
        assert_eq!(m.entries.len(), 1);
    }

    /// Root-level semantics: a filter over the root node with a true
    /// assignment admits everything; tuples failing it are dropped.
    #[test]
    fn filter_on_root_node() {
        let q = query1();
        let b = builder(&q);
        let m = b.filter_map(q.tree.root(), &[Tag::empty()]);
        assert_eq!(m.entries.len(), 1);
        let e = &m.entries[0];
        assert_eq!(
            e.pos.as_ref().unwrap(),
            &Tag::from_pairs([(q.tree.root(), Truth::True)])
        );
        assert_eq!(e.neg, None, "root-false is dead by Precept 1");
    }

    /// Naive strategy (§3.1): both outcomes always, joins are full
    /// Cartesian products, tag count doubles per filter.
    #[test]
    fn naive_strategy_blows_up() {
        let q = query1();
        let b = TagMapBuilder::new(&q.tree, TagMapStrategy::Naive);
        let mut tags = vec![Tag::empty()];
        for node in [q.p1, q.p2] {
            let m = b.filter_map(node, &tags);
            assert_eq!(m.entries.len(), tags.len());
            tags = b.filter_output_tags(&m, &tags);
        }
        assert_eq!(tags.len(), 4, "2^2 tags after two filters");
        // Join with a 2-tag right side: full product.
        let right = vec![
            Tag::from_pairs([(q.p3, Truth::True)]),
            Tag::from_pairs([(q.p3, Truth::False)]),
        ];
        let jm = b.join_map(&tags, &right);
        assert_eq!(jm.entries.len(), 8);
        // Projection still prunes to satisfying combinations: only tags
        // with P2=T ∧ P3=T determine the root (clause 2) — clause 1 would
        // additionally need P4, which no filter has applied.
        let outs = b.join_output_tags(&jm);
        let proj = b.projection_tags(&outs);
        assert_eq!(proj.allowed.len(), 2);
        for t in &proj.allowed {
            assert_eq!(t.get(q.p2), Some(Truth::True));
            assert_eq!(t.get(q.p3), Some(Truth::True));
        }
    }

    /// Three-valued mode: filters emit unknown outputs; unknown at the
    /// root is dead (Precept 1 extension, §3.4 change 4).
    #[test]
    fn three_valued_filter_outputs() {
        let q = query1();
        let b = TagMapBuilder::new(&q.tree, TagMapStrategy::Generalized { use_closure: true })
            .with_three_valued(true);
        let m = b.filter_map(q.p1, &[Tag::empty()]);
        let e = &m.entries[0];
        // P1=U means year IS NULL ⇒ P2=U too ⇒ A1=U, A2 undetermined
        // until score known… A2 gets U∧? — P2=U alone doesn't finish A2.
        let unk = e.unk.as_ref().unwrap();
        assert_eq!(unk.get(q.p1).or(unk.get(q.a1)), Some(Truth::Unknown));
        // A filter on the root with 3VL: unknown output is dead.
        let m = b.filter_map(q.tree.root(), &[Tag::empty()]);
        assert_eq!(m.entries[0].unk, None);
    }

    /// Entries whose every output died signal "drop the slice".
    #[test]
    fn dead_entry_drops_slice() {
        // Single-predicate query: x < 5. Tag {} filtered by root.
        let e: Expr = col("t", "x").lt(5i64);
        let tree = PredicateTree::build(&e);
        let b = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let m = b.filter_map(tree.root(), &[Tag::empty()]);
        let entry = &m.entries[0];
        assert!(entry.pos.is_some());
        assert!(entry.neg.is_none());
        // Now an impossible second filter: x > 9 on the {root=T} slice —
        // pos branch is contradictory, neg branch stays root-true.
        let e2: Expr = and(vec![col("t", "x").lt(5i64), col("t", "x").lt(100i64)]);
        let tree2 = PredicateTree::build(&e2);
        let b2 = TagMapBuilder::new(&tree2, TagMapStrategy::Generalized { use_closure: true });
        let find = |s: &str| {
            tree2
                .atom_ids()
                .into_iter()
                .find(|&id| tree2.display(id) == s)
                .unwrap()
        };
        let lt5 = find("t.x < 5");
        let lt100 = find("t.x < 100");
        // {lt5=T} already implies lt100=T → redundant, no entry.
        let input = Tag::from_pairs([(lt5, Truth::True)]);
        let m = b2.filter_map(lt100, &[input]);
        assert!(m.entries.is_empty());
    }

    /// Join entries with conflicting tag unions are skipped.
    #[test]
    fn join_conflicting_union_skipped() {
        let q = query1();
        let b = builder(&q);
        let l = vec![Tag::from_pairs([(q.p1, Truth::True)])];
        let r = vec![Tag::from_pairs([(q.p1, Truth::False)])];
        let jm = b.join_map(&l, &r);
        assert!(jm.entries.is_empty());
    }

    #[test]
    fn projection_requires_definite_true() {
        let q = query1();
        let b = builder(&q);
        let undetermined = Tag::from_pairs([(q.p1, Truth::True)]);
        let dead = Tag::from_pairs([(q.tree.root(), Truth::False)]);
        let alive = Tag::from_pairs([(q.tree.root(), Truth::True)]);
        let proj = b.projection_tags(&[undetermined.clone(), dead, alive.clone()]);
        // {P1=T} closure-implies P2=T but P3/P4 are unknown → undetermined.
        assert_eq!(proj.allowed, vec![alive]);
        let _ = undetermined;
    }
}
