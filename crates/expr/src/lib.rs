//! Predicate expressions and the predicate tree (§2.1, §3.2).
//!
//! Everything tagged execution does revolves around *predicate
//! expressions*: tags are truth assignments to nodes of the query's
//! predicate tree, and tag generalization is an upward propagation over
//! that tree. This crate provides:
//!
//! * [`Atom`] / [`Expr`] — the construction-time AST for base predicates
//!   and arbitrarily nested AND/OR/NOT combinations, with a builder DSL
//!   ([`col`], [`and`], [`or`], [`not`]).
//! * [`PredicateTree`] — the interned, normalized runtime form. Structural
//!   duplicates share one [`ExprId`] node with *multiple parents* (the DAG
//!   the paper's duplicate-handling in Algorithm 1 requires), and no
//!   intermediate node has the same kind as its parent (the paper's
//!   normalization footnote).
//! * [`eval`] — vectorized three-valued evaluation of any node over
//!   columnar data.
//! * [`subsume`] — the implication closure between comparison atoms on the
//!   same column (`year > 2000 ⇒ year > 1980`), which the paper's planner
//!   uses to skip redundant filter work.
//! * `factor` (via [`factor_common_conjuncts`]) — common-conjunct factoring,
//!   `(A∧B∧C) ∨ (A∧B∧D) → A∧B∧(C∨D)`, used to derive the
//!   BPushConj-comparable form of each benchmark query (§5.1).

#![forbid(unsafe_code)]

mod atom;
mod expr;
mod factor;
mod like;
mod tree;

pub mod eval;
pub mod subsume;

pub use atom::{Atom, CmpOp, ColumnRef};
pub use expr::{and, col, lit, not, or, Expr};
pub use factor::factor_common_conjuncts;
pub use like::like_match;
pub use tree::{ExprId, NodeKind, PredicateTree};
