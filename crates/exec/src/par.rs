//! Morsel-parallel drivers for the shared execution kernels.
//!
//! These are the fan-out halves of the operators in [`crate::ops`]: the
//! serial kernels stay where they are (and remain the `workers == 1`
//! path, bit-for-bit), while this module splits their row ranges into
//! [`Morsel`]s, runs them on a [`WorkerPool`]'s workers against
//! per-worker arenas, and merges the per-morsel results **in morsel
//! order** — word-range stitching for masks (disjoint word ranges mean
//! the merge is concatenation, not re-intersection) and ordered
//! concatenation for join match lists — so parallel output is
//! indistinguishable from serial output.
//!
//! Arena discipline (see `basilisk-sched`): workers check scratch out of
//! *their own* arena; per-morsel results ride back to the coordinating
//! thread tagged with the producing worker id and are recycled into that
//! worker's arena after merging. The coordinator's own scratch (the
//! stitched mask, the concatenated selection vectors) comes from the
//! session arena, exactly like the serial path — which is why session
//! steady-state stats stay at `fresh() == 0` in parallel mode too.

use basilisk_expr::eval::{eval_node_mask, eval_node_mask_morsel, ColumnProvider};
use basilisk_expr::{ExprId, PredicateTree};
use basilisk_sched::WorkerPool;
use basilisk_types::{Bitmap, MaskArena, Result, TruthMask};

use crate::hash::JoinTable;
use crate::relation::join_key;

/// Morsel-parallel [`eval_node_mask`]: evaluate a predicate subtree over
/// the rows selected by `sel`, one morsel per task, and stitch the
/// per-morsel masks into one relation-length mask checked out of the
/// *session* arena.
///
/// Falls back to the serial evaluator when the pool has one worker or
/// the relation fits in a single morsel, so callers can use this
/// unconditionally. The provider is shared by every worker (hence the
/// `Sync` bound): [`RelProvider`](crate::RelProvider)'s sharded column
/// cache lets sparse selections keep their page-selective `fetch_at`
/// read path from worker threads — columns are gathered once by
/// whichever worker asks first and shared by the rest, instead of being
/// dense-prefetched on the coordinator.
pub fn eval_mask_parallel(
    tree: &PredicateTree,
    id: ExprId,
    provider: &(impl ColumnProvider + Sync),
    sel: &Bitmap,
    arena: &MaskArena,
    pool: &WorkerPool,
) -> Result<TruthMask> {
    let n = sel.len();
    if !pool.would_parallelize(n) {
        return eval_node_mask(tree, id, provider, sel, arena);
    }
    let morsels = pool.morsels(n);
    let results = pool.run(
        morsels.clone(),
        |ctx, m| eval_node_mask_morsel(tree, id, provider, sel, ctx.arena, m),
        |worker_arena, mask| worker_arena.recycle_mask(mask),
    )?;
    let mut out = arena.mask(n);
    for (m, (worker, mask)) in morsels.into_iter().zip(results) {
        out.stitch(m, &mask);
        pool.with_arena(worker, |a| a.recycle_mask(mask));
    }
    Ok(out)
}

/// The probe half of a hash join over one contiguous range of probe
/// positions: for each position `j` in `range`, append every matching
/// `(build_row, j)` pair. Both the serial join and each parallel probe
/// task run exactly this loop, so chunked outputs concatenated in range
/// order equal the serial output.
pub(crate) fn probe_range(
    table: &JoinTable,
    probe_col: &basilisk_storage::Column,
    range: std::ops::Range<usize>,
    build_sel: &mut Vec<u32>,
    probe_sel: &mut Vec<u32>,
) {
    for j in range {
        if let Some(k) = join_key(probe_col, j) {
            for &i in table.probe(&k) {
                build_sel.push(i);
                probe_sel.push(j as u32);
            }
        }
    }
}

/// Partitioned-probe driver shared by the plain and tagged joins: run
/// `probe` over each morsel-sized chunk of `0..probe_len` on the pool's
/// workers (match buffers from the worker's arena), then hand the chunk
/// outputs to `merge` **in chunk order**. Returns `false` — leaving the
/// caller on its serial path — when the pool or the probe size doesn't
/// warrant fanning out.
pub fn partitioned_probe<R: Send>(
    pool: &WorkerPool,
    probe_len: usize,
    probe: impl Fn(&MaskArena, std::ops::Range<usize>) -> Result<R> + Sync,
    discard: impl Fn(&MaskArena, R),
    mut merge: impl FnMut(u32, R, &WorkerPool),
) -> Result<bool> {
    if !pool.would_parallelize(probe_len) {
        return Ok(false);
    }
    let chunks: Vec<std::ops::Range<usize>> = pool
        .morsels(probe_len)
        .into_iter()
        .map(|m| m.start()..m.end())
        .collect();
    let results = pool.run(
        chunks,
        |ctx, range| probe(ctx.arena, range),
        |worker_arena, r| discard(worker_arena, r),
    )?;
    for (worker, r) in results {
        merge(worker, r, pool);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{IdxRelation, RelProvider, TableSet};
    use basilisk_expr::{and, col, not, or};
    use basilisk_storage::TableBuilder;
    use basilisk_types::{DataType, Value};
    use std::sync::Arc;

    fn tset(rows: usize) -> TableSet {
        let mut b = TableBuilder::new("t")
            .column("id", DataType::Int)
            .column("year", DataType::Int)
            .column("name", DataType::Str);
        for i in 0..rows as i64 {
            let year = if i % 19 == 0 {
                Value::Null
            } else {
                Value::Int(1900 + i % 120)
            };
            b.push_row(vec![i.into(), year, format!("n{}", i % 37).into()])
                .unwrap();
        }
        TableSet::from_tables(vec![("t".into(), Arc::new(b.finish().unwrap()))])
    }

    /// The pinned differential: parallel eval over many morsels equals
    /// serial eval lane-for-lane, across connectives, NULLs, strings and
    /// a non-word-aligned tail.
    #[test]
    fn parallel_eval_equals_serial() {
        let rows = 1000; // not a multiple of 64 → ragged tail morsel
        let ts = tset(rows);
        let rel = IdxRelation::base("t", rows);
        let tree = PredicateTree::build(&or(vec![
            and(vec![
                col("t", "year").gt(1980i64),
                col("t", "name").like("%3%"),
            ]),
            col("t", "year").lt(1910i64),
            not(col("t", "year").is_null()),
        ]));
        let serial_arena = MaskArena::new();
        let provider = RelProvider::new(&ts, &rel);
        let sel = Bitmap::from_indices(rows, (0..rows).filter(|i| i % 3 != 1));
        let serial = eval_node_mask(&tree, tree.root(), &provider, &sel, &serial_arena).unwrap();

        for workers in [2, 3, 8] {
            let pool = WorkerPool::new(workers).with_morsel_rows(128);
            let arena = MaskArena::new();
            let provider = RelProvider::new(&ts, &rel);
            let par =
                eval_mask_parallel(&tree, tree.root(), &provider, &sel, &arena, &pool).unwrap();
            assert_eq!(
                par.to_truths(),
                serial.to_truths(),
                "{workers} workers diverged"
            );
            arena.recycle_mask(par);
            assert_eq!(arena.outstanding(), 0);
            assert_eq!(pool.outstanding(), 0, "worker arenas drained");
        }
        serial_arena.recycle_mask(serial);
    }

    /// Single-worker pools and single-morsel relations take the serial
    /// path (no prefetch, no spawn) and still agree.
    #[test]
    fn parallel_eval_degenerate_cases() {
        let rows = 200;
        let ts = tset(rows);
        let rel = IdxRelation::base("t", rows);
        let tree = PredicateTree::build(&col("t", "year").gt(1950i64));
        let sel = Bitmap::all_set(rows);
        let arena = MaskArena::new();
        let provider = RelProvider::new(&ts, &rel);
        let serial = eval_node_mask(&tree, tree.root(), &provider, &sel, &arena).unwrap();
        for pool in [
            WorkerPool::new(1).with_morsel_rows(64),
            WorkerPool::new(4), // default morsels ≫ 200 rows → one morsel
        ] {
            let provider = RelProvider::new(&ts, &rel);
            let m = eval_mask_parallel(&tree, tree.root(), &provider, &sel, &arena, &pool).unwrap();
            assert_eq!(m.to_truths(), serial.to_truths());
            arena.recycle_mask(m);
        }
        arena.recycle_mask(serial);
        assert_eq!(arena.outstanding(), 0);
    }

    /// A mid-evaluation type error (Str column vs Int literal) inside
    /// worker tasks must strand nothing in any arena.
    #[test]
    fn parallel_eval_error_leaks_nothing() {
        let rows = 600;
        let ts = tset(rows);
        let rel = IdxRelation::base("t", rows);
        // First disjunct evaluates fine; second explodes at eval time.
        let tree = PredicateTree::build(&or(vec![
            col("t", "year").gt(1950i64),
            col("t", "name").gt(5i64),
        ]));
        let pool = WorkerPool::new(3).with_morsel_rows(64);
        let arena = MaskArena::new();
        let provider = RelProvider::new(&ts, &rel);
        let sel = Bitmap::all_set(rows);
        let err = eval_mask_parallel(&tree, tree.root(), &provider, &sel, &arena, &pool);
        assert!(err.is_err(), "type mismatch must fail evaluation");
        assert_eq!(arena.outstanding(), 0, "session arena drained");
        assert_eq!(pool.outstanding(), 0, "every worker arena drained");
    }
}
