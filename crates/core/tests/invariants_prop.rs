//! Tagged-execution invariants under random filter chains, plus the §3.2
//! "Limitations" worst case.
//!
//! Invariants checked after every operator (from §2.1/§2.5):
//! * relational slices are mutually exclusive;
//! * the underlying index relation is never rewritten by filters;
//! * every slice's bitmap length matches the relation;
//! * the union of output slices is a subset of the union of input slices
//!   (filters only drop or re-label, never invent tuples).

use basilisk_core::{tagged_filter, Tag, TagMapBuilder, TagMapStrategy, TaggedRelation};
use basilisk_exec::{IdxRelation, TableSet};
use basilisk_expr::{and, col, or, Expr, PredicateTree};
use basilisk_storage::{Column, Table};
use basilisk_types::MaskArena;
use proptest::prelude::*;
use std::sync::Arc;

fn table(values: &[i64]) -> TableSet {
    let cols = vec![
        ("a".to_string(), Column::from_ints(values.to_vec())),
        (
            "b".to_string(),
            Column::from_ints(values.iter().map(|v| v * 7 % 100).collect()),
        ),
        (
            "c".to_string(),
            Column::from_ints(values.iter().map(|v| v * 13 % 100).collect()),
        ),
    ];
    let t = Table::from_columns("t", cols).unwrap();
    TableSet::from_tables(vec![("t".into(), Arc::new(t))])
}

fn pred_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|v| col("t", "a").lt(v)),
        (0i64..100).prop_map(|v| col("t", "b").ge(v)),
        (0i64..100).prop_map(|v| col("t", "c").eq(v)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filter_chains_preserve_invariants(
        values in proptest::collection::vec(0i64..100, 1..120),
        pred in pred_strategy(),
    ) {
        let tables = table(&values);
        let arena = MaskArena::new();
        let tree = PredicateTree::build(&pred);
        let builder =
            TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
        let mut rel = TaggedRelation::base(IdxRelation::base("t", values.len()));
        let mut tags = vec![Tag::empty()];
        for node in tree.atom_ids() {
            let map = builder.filter_map(node, &tags);
            tags = builder.filter_output_tags(&map, &tags);
            let prev_union = rel.union_all();
            rel = tagged_filter(&tables, &rel, &tree, &map, &arena).unwrap();
            // Invariants.
            prop_assert!(rel.check_mutually_exclusive());
            prop_assert_eq!(rel.num_tuples(), values.len(), "relation never rewritten");
            prop_assert!(
                rel.union_all().is_subset(&prev_union),
                "filters only drop or re-label"
            );
            for (tag, bm) in rel.slices() {
                prop_assert_eq!(bm.len(), values.len());
                prop_assert!(!bm.is_zero(), "empty slices are removed");
                prop_assert!(!tag.is_empty() || rel.num_slices() == 1);
            }
        }
        // Final check: projected rows equal a direct evaluation.
        let proj = builder.projection_tags(&tags);
        let selected = basilisk_core::tagged_select_final(&rel, &proj, &arena);
        let expected = basilisk_exec::filter(
            &tables,
            &IdxRelation::base("t", values.len()),
            &tree,
            tree.root(),
            &arena,
        )
        .unwrap();
        let mut a = selected.col("t").unwrap().to_vec();
        let mut e = expected.col("t").unwrap().to_vec();
        a.sort_unstable();
        e.sort_unstable();
        prop_assert_eq!(a, e);
    }
}

/// The §3.2 "Limitations" case: (X1 ∨ Y1) ∧ … ∧ (Xn ∨ Yn) with filters
/// ordered X1..Xn, Y1..Yn requires 2ⁿ tags mid-pipeline — generalization
/// cannot help because no clause resolves until its Y arrives. The paper:
/// "the number of tags produced can still be exponential in the worst
/// case". Interleaving the same filters (X1 Y1 X2 Y2 …) keeps the tag
/// space linear.
#[test]
fn limitations_worst_case_tag_blowup() {
    let n = 6usize;
    let clauses: Vec<Expr> = (0..n)
        .map(|i| {
            or(vec![
                col("t", &format!("x{i}")).lt(50i64),
                col("t", &format!("y{i}")).lt(50i64),
            ])
        })
        .collect();
    let tree = PredicateTree::build(&and(clauses));
    let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });
    let find = |s: String| {
        tree.atom_ids()
            .into_iter()
            .find(|&id| tree.display(id) == s)
            .unwrap()
    };

    // Degenerate order: all X first.
    let mut tags = vec![Tag::empty()];
    let mut peak_bad = 0;
    for i in 0..n {
        let map = builder.filter_map(find(format!("t.x{i} < 50")), &tags);
        tags = builder.filter_output_tags(&map, &tags);
        peak_bad = peak_bad.max(tags.len());
    }
    assert_eq!(peak_bad, 1 << n, "2^n tags after the X prefix");

    // Interleaved order: X_i immediately followed by Y_i.
    let mut tags = vec![Tag::empty()];
    let mut peak_good = 0;
    for i in 0..n {
        for name in [format!("t.x{i} < 50"), format!("t.y{i} < 50")] {
            let map = builder.filter_map(find(name), &tags);
            tags = builder.filter_output_tags(&map, &tags);
            peak_good = peak_good.max(tags.len());
        }
    }
    assert!(
        peak_good <= 3,
        "interleaving collapses each clause immediately (got {peak_good})"
    );
}
