//! SQL-level feature coverage through the Database facade: every predicate
//! form the parser supports, executed under both execution models.

use basilisk::{DataType, Database, PlannerKind, TableBuilder, Value};

fn db() -> Database {
    let mut db = Database::new();
    let mut b = TableBuilder::new("people")
        .column("id", DataType::Int)
        .column("age", DataType::Int)
        .column("name", DataType::Str)
        .column("city", DataType::Str);
    for (id, age, name, city) in [
        (1i64, Value::Int(34), "Ada Lovelace", "London"),
        (2, Value::Int(41), "Alan Turing", "London"),
        (3, Value::Null, "Grace Hopper", "New York"),
        (4, Value::Int(28), "Edsger Dijkstra", "Rotterdam"),
        (5, Value::Int(62), "Barbara Liskov", "Los Angeles"),
        (6, Value::Null, "Kurt Gödel", "Brno"),
    ] {
        b.push_row(vec![id.into(), age, name.into(), city.into()])
            .unwrap();
    }
    db.register(b.finish().unwrap()).unwrap();

    let mut b = TableBuilder::new("visits")
        .column("person_id", DataType::Int)
        .column("score", DataType::Float);
    for (pid, s) in [
        (1i64, 0.9),
        (1, 0.2),
        (2, 0.5),
        (3, 0.7),
        (4, 0.1),
        (5, 0.8),
    ] {
        b.push_row(vec![pid.into(), s.into()]).unwrap();
    }
    db.register(b.finish().unwrap()).unwrap();
    db
}

fn agree(db: &Database, sql: &str) -> usize {
    let mut counts = Vec::new();
    for kind in [
        PlannerKind::TPushdown,
        PlannerKind::TCombined,
        PlannerKind::BDisj,
        PlannerKind::BPushConj,
    ] {
        counts.push(db.sql_with(sql, kind).unwrap().row_count);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "planners disagree on `{sql}`: {counts:?}"
    );
    counts[0]
}

#[test]
fn between_desugars() {
    let db = db();
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p WHERE p.age BETWEEN 30 AND 45"
        ),
        2
    );
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p WHERE p.age NOT BETWEEN 30 AND 45"
        ),
        2,
        "NULL ages fail both BETWEEN and NOT BETWEEN"
    );
}

#[test]
fn in_list_and_is_null() {
    let db = db();
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p WHERE p.city IN ('London', 'Brno') OR p.age IS NULL"
        ),
        4
    );
    assert_eq!(
        agree(&db, "SELECT p.id FROM people p WHERE p.age IS NOT NULL"),
        4
    );
}

#[test]
fn like_and_not_like() {
    let db = db();
    assert_eq!(
        agree(&db, "SELECT p.id FROM people p WHERE p.name LIKE 'A%'"),
        2
    );
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p WHERE p.name NOT LIKE '%a%' AND p.city ILIKE '%LON%'"
        ),
        0,
        "both Londoners have an 'a'"
    );
}

#[test]
fn disjunction_across_join_with_nulls() {
    let db = db();
    // Grace (age NULL) qualifies through her visit score; Kurt (age NULL,
    // no visits) never joins.
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p JOIN visits v ON p.id = v.person_id \
             WHERE (p.age > 40 AND v.score > 0.4) OR v.score > 0.6"
        ),
        4 // Ada 0.9 → clause2; Alan 0.5 → clause1; Grace 0.7 → clause2;
          // Barbara 0.8 → both clauses (counted once). Kurt has no visits
          // and Edsger fails both clauses.
    );
}

#[test]
fn disjunction_row_identities() {
    let db = db();
    let sql = "SELECT p.name, v.score FROM people p JOIN visits v ON p.id = v.person_id \
               WHERE (p.age > 40 AND v.score > 0.4) OR v.score > 0.6";
    let r = db.sql_with(sql, PlannerKind::TCombined).unwrap();
    let names: Vec<String> = (0..r.row_count)
        .map(|i| r.columns[0].1.value(i).to_string())
        .collect();
    let mut names = names;
    names.sort();
    assert_eq!(
        names,
        vec![
            "'Ada Lovelace'",
            "'Alan Turing'",
            "'Barbara Liskov'",
            "'Grace Hopper'"
        ]
    );
}

#[test]
fn nested_not_and_mixed_forms() {
    let db = db();
    assert_eq!(
        agree(
            &db,
            "SELECT p.id FROM people p WHERE NOT (p.city = 'London' OR p.age < 30)"
        ),
        1,
        "Barbara only: NULL ages make NOT(…) unknown, Rotterdam is <30"
    );
}

#[test]
fn count_star_and_limit() {
    let db = db();
    let r = db
        .sql_with(
            "SELECT COUNT(*) FROM people p WHERE p.city = 'London'",
            PlannerKind::TCombined,
        )
        .unwrap();
    assert_eq!(r.row_count, 1);
    assert_eq!(r.columns[0].1.value(0), Value::Int(2));
    assert!(r.to_table_string(5).contains("count(*)"));

    let r = db
        .sql_with(
            "SELECT p.id FROM people p WHERE p.id > 0 LIMIT 3",
            PlannerKind::BPushConj,
        )
        .unwrap();
    assert_eq!(r.row_count, 3);
    assert_eq!(r.columns[0].1.len(), 3);

    // LIMIT larger than the result is a no-op; LIMIT 0 empties it.
    let r = db.sql("SELECT p.id FROM people p LIMIT 100").unwrap();
    assert_eq!(r.row_count, 6);
    let r = db.sql("SELECT p.id FROM people p LIMIT 0").unwrap();
    assert_eq!(r.row_count, 0);

    // `limit` is reserved: it cannot be swallowed as a table alias.
    let r = db.sql("SELECT COUNT(*) FROM people LIMIT 2").unwrap();
    assert_eq!(r.columns[0].1.value(0), Value::Int(6));

    // Errors.
    assert!(db.sql("SELECT p.id FROM people p LIMIT x").is_err());
    assert!(db.sql("SELECT COUNT(p.id) FROM people p").is_err());
}
