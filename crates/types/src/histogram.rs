//! The shared power-of-two microsecond histogram.
//!
//! Serving latency and region slot-wait times share one recording shape:
//! [`HISTOGRAM_BUCKETS`] lock-free buckets where bucket `i` counts
//! durations in `[2^i, 2^(i+1))` microseconds (bucket 0 additionally
//! takes sub-microsecond durations, the last bucket everything slower),
//! plus a running total for exact means. [`Histogram`] is the recorder
//! half (façade atomics, relaxed ordering — a recording is one
//! `fetch_add` per bucket and one for the total); [`HistogramSnapshot`]
//! is the plain-data read side with the `mean`/`quantile` helpers the
//! serving layer exposes.

use std::time::Duration;

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets. 24 buckets cover sub-microsecond up
/// to ~16.8 s before the saturating top bucket takes over.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Map a duration in microseconds to its bucket index.
#[inline]
pub fn bucket_index(micros: u64) -> usize {
    (64 - micros.leading_zeros() as usize)
        .saturating_sub(1)
        .min(HISTOGRAM_BUCKETS - 1)
}

/// The lock-free recorder half (see the module docs). `Default` is an
/// empty histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total_micros: AtomicU64,
}

impl Histogram {
    /// Record one duration already converted to microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duration (saturating at `u64::MAX` microseconds).
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            total_micros: self.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`] with the derived statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts durations in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of every recorded duration, in microseconds.
    pub total_micros: u64,
}

impl HistogramSnapshot {
    /// Rebuild a snapshot from raw parts (how the serving layer derives
    /// statistics over bucket arrays it carries as plain fields).
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS], total_micros: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets,
            total_micros,
        }
    }

    /// Total durations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded duration ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros / n)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (0 < q ≤ 1) — e.g. `quantile(0.99)` for a p99 estimate.
    /// [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        Duration::from_micros(1u64 << HISTOGRAM_BUCKETS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_power_of_two_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1000), 9, "[512, 1024) µs");
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(3));
        h.record_micros(1000);
        h.record(Duration::from_secs(4000)); // beyond range → last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.count(), 4);
        assert_eq!(s.total_micros, 3 + 1000 + 4_000_000_000);
    }

    #[test]
    fn empty_snapshot_statistics() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile(0.5), Duration::ZERO);
        assert_eq!(s.quantile(1.0), Duration::ZERO);
    }

    #[test]
    fn single_bucket_quantiles() {
        // Every recording in one bucket: any quantile reports that
        // bucket's upper bound.
        let h = Histogram::default();
        for _ in 0..10 {
            h.record_micros(5); // [4, 8) → bucket 2
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.01), Duration::from_micros(8));
        assert_eq!(s.quantile(0.5), Duration::from_micros(8));
        assert_eq!(s.quantile(1.0), Duration::from_micros(8));
        assert_eq!(s.mean(), Duration::from_micros(5));
    }

    #[test]
    fn saturating_top_bucket_quantile() {
        // Recordings beyond the bucket range land in the top bucket; its
        // reported upper bound is 2^HISTOGRAM_BUCKETS µs, not the true
        // maximum.
        let h = Histogram::default();
        h.record(Duration::from_secs(100_000));
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(
            s.quantile(1.0),
            Duration::from_micros(1u64 << HISTOGRAM_BUCKETS)
        );
    }

    #[test]
    fn quantile_spread_and_rank_rounding() {
        let h = Histogram::default();
        h.record_micros(1); // bucket 0
        h.record_micros(1); // bucket 0
        h.record_micros(3); // bucket 1
        h.record_micros(100); // bucket 6
        let s = h.snapshot();
        // rank(0.5) = ceil(0.5·4) = 2 → still bucket 0.
        assert_eq!(s.quantile(0.5), Duration::from_micros(2));
        // rank(0.75) = 3 → bucket 1.
        assert_eq!(s.quantile(0.75), Duration::from_micros(4));
        assert_eq!(s.quantile(1.0), Duration::from_micros(128));
        // q clamps: 0 behaves like the minimum rank, > 1 like the max.
        assert_eq!(s.quantile(0.0), Duration::from_micros(2));
        assert_eq!(s.quantile(2.0), Duration::from_micros(128));
    }

    #[test]
    fn from_parts_round_trips() {
        let h = Histogram::default();
        h.record_micros(7);
        let s = h.snapshot();
        assert_eq!(HistogramSnapshot::from_parts(s.buckets, s.total_micros), s);
    }
}
