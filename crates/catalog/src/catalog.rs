//! The table registry.

use std::collections::HashMap;
use std::sync::Arc;

use basilisk_storage::Table;
use basilisk_types::{BasiliskError, Result};

use crate::stats::{compute_table_stats, TableStats};

/// A registry of named tables and their statistics.
///
/// Statistics are computed once when a table is registered (the paper
/// measures selectivities and uses PostgreSQL-style join estimates; both
/// need NDV and row counts, which we compute exactly at load time — tables
/// in this system are immutable once registered).
///
/// Cloning is cheap (tables and statistics are `Arc`-shared) and yields
/// a snapshot: the serving layer clones the catalog it was built from,
/// so later registrations in the source are not seen by a live server.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    stats: HashMap<String, Arc<TableStats>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, computing its statistics.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(BasiliskError::Schema(format!(
                "table {name} already registered"
            )));
        }
        let stats = compute_table_stats(&table)?;
        self.tables.insert(name.clone(), Arc::new(table));
        self.stats.insert(name, Arc::new(stats));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| BasiliskError::Schema(format!("no table named {name}")))
    }

    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>> {
        self.stats
            .get(name)
            .cloned()
            .ok_or_else(|| BasiliskError::Schema(format!("no statistics for table {name}")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::TableBuilder;
    use basilisk_types::DataType;

    fn t(name: &str) -> Table {
        let mut b = TableBuilder::new(name).column("a", DataType::Int);
        b.push_row(vec![1i64.into()]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add_table(t("x")).unwrap();
        c.add_table(t("y")).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.has_table("x"));
        assert!(!c.has_table("z"));
        assert_eq!(c.table("x").unwrap().name(), "x");
        assert!(c.table("z").is_err());
        assert_eq!(c.table_names(), vec!["x", "y"]);
        assert_eq!(c.stats("x").unwrap().rows, 1);
        assert!(c.stats("z").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.add_table(t("x")).unwrap();
        assert!(c.add_table(t("x")).is_err());
    }
}
