//! Property tests for SQL `LIKE` over multi-byte UTF-8 text.
//!
//! The production matcher (`basilisk_expr::like_match`) is a two-pointer
//! wildcard algorithm over *bytes* whose `%`-backtracking and `_`
//! advancement step by UTF-8 code-point lengths. These tests pin its
//! equivalence to a naive `chars()`-based dynamic-programming reference
//! on text/patterns mixing ASCII with 2-, 3- and 4-byte code points —
//! the ISSUE-3 bugfix sweep item for the byte-wise backtracking.

use basilisk_expr::like_match;
use proptest::prelude::*;

/// Reference matcher: O(n·m) DP over code points. `%` matches any run of
/// characters (including empty), `_` exactly one; literals compare
/// ASCII-case-folded when `ci` is set (`ILIKE` semantics).
fn like_ref(text: &str, pattern: &str, ci: bool) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // dp[j] = does p[..j] match t[..i] for the current row i.
    let mut dp = vec![false; p.len() + 1];
    dp[0] = true;
    for j in 1..=p.len() {
        dp[j] = dp[j - 1] && p[j - 1] == '%';
    }
    for i in 1..=t.len() {
        let mut prev_diag = dp[0]; // dp[i-1][0]
        dp[0] = false;
        for j in 1..=p.len() {
            let cur = dp[j]; // dp[i-1][j]
            dp[j] = match p[j - 1] {
                '%' => dp[j - 1] || cur,
                '_' => prev_diag,
                c => {
                    let tc = t[i - 1];
                    let eq = if ci {
                        c.eq_ignore_ascii_case(&tc)
                    } else {
                        c == tc
                    };
                    prev_diag && eq
                }
            };
            prev_diag = cur;
        }
    }
    dp[p.len()]
}

/// Alphabet mixing byte widths: ASCII (upper/lower for the `ci` cases),
/// 2-byte (é, Ä), 3-byte (日, €), 4-byte (𝄞, 😀). `ß` exercises a char
/// whose ASCII fold is the identity but whose Unicode fold is not.
fn text_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('a'),
        Just('A'),
        Just('b'),
        Just('z'),
        Just('é'),
        Just('Ä'),
        Just('ß'),
        Just('日'),
        Just('€'),
        Just('𝄞'),
        Just('😀'),
    ]
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(text_char(), 0..12).prop_map(|cs| cs.into_iter().collect())
}

/// Patterns are built from the same alphabet plus `%` and `_` so that
/// wildcard/backtracking interactions with multi-byte text are dense.
fn pattern_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('%'),
        Just('%'),
        Just('_'),
        Just('_'),
        Just('a'),
        Just('A'),
        Just('b'),
        Just('é'),
        Just('日'),
        Just('𝄞'),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(pattern_char(), 0..10).prop_map(|cs| cs.into_iter().collect())
}

/// Exhaustive sweep of every (text, pattern) pair up to 3 characters
/// each over a width-mixed alphabet — denser than random sampling around
/// the `%`-backtracking boundary cases.
#[test]
fn exhaustive_small_cases_match_reference() {
    const TEXT_ALPHA: [char; 4] = ['a', 'é', '日', '𝄞'];
    const PAT_ALPHA: [char; 6] = ['a', 'é', '日', '𝄞', '%', '_'];
    fn words(alpha: &[char], max_len: usize) -> Vec<String> {
        let mut out = vec![String::new()];
        let mut layer = vec![String::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &layer {
                for &c in alpha {
                    let mut s = w.clone();
                    s.push(c);
                    next.push(s);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }
    let mut checked = 0usize;
    for text in words(&TEXT_ALPHA, 3) {
        for pattern in words(&PAT_ALPHA, 3) {
            for ci in [false, true] {
                assert_eq!(
                    like_match(&text, &pattern, ci),
                    like_ref(&text, &pattern, ci),
                    "text {text:?} pattern {pattern:?} ci {ci}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 40_000, "sweep actually ran ({checked} cases)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Byte-wise matcher ≡ chars()-based reference, case-sensitive.
    #[test]
    fn like_matches_reference(text in text_strategy(), pattern in pattern_strategy()) {
        prop_assert_eq!(
            like_match(&text, &pattern, false),
            like_ref(&text, &pattern, false),
            "text {:?} pattern {:?}", text, pattern
        );
    }

    /// Same under ASCII case folding (ILIKE).
    #[test]
    fn ilike_matches_reference(text in text_strategy(), pattern in pattern_strategy()) {
        prop_assert_eq!(
            like_match(&text, &pattern, true),
            like_ref(&text, &pattern, true),
            "text {:?} pattern {:?}", text, pattern
        );
    }

    /// The `%x%` containment idiom agrees with a `chars()`-window scan
    /// for every single-character needle in the alphabet.
    #[test]
    fn contains_idiom(text in text_strategy(), needle in text_char()) {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(
            like_match(&text, &pattern, false),
            text.chars().any(|c| c == needle),
            "text {:?} needle {:?}", text, needle
        );
    }

    /// `_` consumes exactly one code point: a pattern of n underscores
    /// matches exactly the texts with n characters, whatever their byte
    /// widths.
    #[test]
    fn underscores_count_code_points(text in text_strategy(), n in 0usize..8) {
        let pattern: String = std::iter::repeat_n('_', n).collect();
        prop_assert_eq!(
            like_match(&text, &pattern, false),
            text.chars().count() == n,
            "text {:?} n {}", text, n
        );
    }
}
