//! Operator-level differential suite for morsel-parallel tagged
//! execution: for every worker count the parallel operators must produce
//! **identical** tagged relations — same tags, same slice bitmaps, same
//! tuple order — as the serial operators, across 3VL splits,
//! pass-through slices, ragged (non-word-aligned) tails and error paths
//! (which must strand nothing in any worker arena).

use std::sync::Arc;

use basilisk_core::{
    tagged_filter, tagged_filter_par, tagged_join, tagged_join_par, TagMapBuilder, TagMapStrategy,
    TaggedRelation,
};
use basilisk_exec::{IdxRelation, TableSet};
use basilisk_expr::{and, col, or, ColumnRef, PredicateTree};
use basilisk_sched::WorkerPool;
use basilisk_storage::{Table, TableBuilder};
use basilisk_types::{DataType, MaskArena, Value};

const ROWS: usize = 1500; // not a multiple of 64: ragged tail morsel

fn title() -> Arc<Table> {
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int)
        .column("name", DataType::Str);
    for i in 0..ROWS as i64 {
        // Periodic NULLs exercise the unknown slice; misaligned periods
        // exercise every word pattern.
        let year = if i % 23 == 0 {
            Value::Null
        } else {
            Value::Int(1900 + (i * 7) % 120)
        };
        b.push_row(vec![i.into(), year, format!("m{}", i % 41).into()])
            .unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn scores() -> Arc<Table> {
    let mut b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    for i in 0..(2 * ROWS) as i64 {
        b.push_row(vec![
            (i % (ROWS as i64 + 40)).into(), // some dangling keys
            (((i * 13) % 100) as f64 / 10.0).into(),
        ])
        .unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn tset() -> TableSet {
    TableSet::from_tables(vec![("t".into(), title()), ("mi".into(), scores())])
}

fn tree() -> PredicateTree {
    PredicateTree::build(&or(vec![
        and(vec![
            col("t", "year").gt(1960i64),
            col("mi", "score").gt(4.0),
        ]),
        and(vec![
            col("t", "name").like("m1%"),
            col("mi", "score").gt(8.0),
        ]),
    ]))
}

/// Tags + slice row sets, in deterministic slice order.
fn fingerprint(rel: &TaggedRelation) -> Vec<(String, Vec<u32>)> {
    rel.slices()
        .iter()
        .map(|(tag, bm)| (format!("{tag:?}"), bm.to_indices()))
        .collect()
}

/// Serial vs parallel tagged filter chains: run both predicates of each
/// side as successive tagged filters (the Figure-1 shape) and compare
/// the full tag → slice map after every step, three-valued included.
#[test]
fn tagged_filter_slices_identical_across_workers() {
    let ts = tset();
    let tree = tree();
    let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true })
        .with_three_valued(true);
    let atoms: Vec<_> = tree
        .atom_ids()
        .into_iter()
        .filter(|&id| tree.atom(id).unwrap().column().table == "t")
        .collect();
    assert!(atoms.len() >= 2);

    let serial_arena = MaskArena::new();
    let mut serial_rel = TaggedRelation::base(IdxRelation::base("t", ROWS));
    let mut tags = vec![basilisk_core::Tag::empty()];
    let mut serial_steps = Vec::new();
    for &node in &atoms {
        let map = builder.filter_map(node, &tags);
        tags = builder.filter_output_tags(&map, &tags);
        serial_rel = tagged_filter(&ts, &serial_rel, &tree, &map, &serial_arena).unwrap();
        serial_steps.push(fingerprint(&serial_rel));
    }

    for workers in [1, 2, 3, 8] {
        let pool = WorkerPool::new(workers).with_morsel_rows(128);
        let arena = MaskArena::new();
        let mut rel = TaggedRelation::base(IdxRelation::base("t", ROWS));
        let mut tags = vec![basilisk_core::Tag::empty()];
        for (step, &node) in atoms.iter().enumerate() {
            let map = builder.filter_map(node, &tags);
            tags = builder.filter_output_tags(&map, &tags);
            rel = tagged_filter_par(&ts, &rel, &tree, &map, &arena, &pool).unwrap();
            assert_eq!(
                fingerprint(&rel),
                serial_steps[step],
                "{workers} workers diverged at filter step {step}"
            );
            assert!(rel.check_mutually_exclusive());
        }
        assert_eq!(pool.outstanding(), 0, "worker arenas drained");
    }
}

/// Serial vs parallel tagged join: one filtered side each, joined under
/// the generalized tag map — joined relation tuples and tag slices must
/// be bit-for-bit identical (including tuple *order*, which ordered
/// chunk concatenation guarantees).
#[test]
fn tagged_join_identical_across_workers() {
    let ts = tset();
    let tree = tree();
    let builder = TagMapBuilder::new(&tree, TagMapStrategy::Generalized { use_closure: true });

    let build_side = |arena: &MaskArena,
                      pool: Option<&WorkerPool>,
                      table: &str|
     -> (TaggedRelation, Vec<basilisk_core::Tag>) {
        let rows = if table == "t" { ROWS } else { 2 * ROWS };
        let mut rel = TaggedRelation::base(IdxRelation::base(table, rows));
        let mut tags = vec![basilisk_core::Tag::empty()];
        for id in tree.atom_ids() {
            if tree.atom(id).unwrap().column().table != table {
                continue;
            }
            let map = builder.filter_map(id, &tags);
            tags = builder.filter_output_tags(&map, &tags);
            rel = match pool {
                Some(p) => tagged_filter_par(&ts, &rel, &tree, &map, arena, p).unwrap(),
                None => tagged_filter(&ts, &rel, &tree, &map, arena).unwrap(),
            };
        }
        (rel, tags)
    };

    let lk = ColumnRef::new("t", "id");
    let rk = ColumnRef::new("mi", "movie_id");

    let serial_arena = MaskArena::new();
    let (sl, slt) = build_side(&serial_arena, None, "t");
    let (sr, srt) = build_side(&serial_arena, None, "mi");
    let jm = builder.join_map(&slt, &srt);
    let serial = tagged_join(&ts, &sl, &sr, &lk, &rk, &jm, &serial_arena).unwrap();
    let serial_fp = fingerprint(&serial);
    let serial_tuples: Vec<Vec<u32>> = (0..serial.num_tuples())
        .map(|i| serial.relation().tuple(i))
        .collect();
    assert!(serial.num_tuples() > 0, "join should match something");

    for workers in [1, 2, 3, 8] {
        let pool = WorkerPool::new(workers).with_morsel_rows(128);
        let arena = MaskArena::new();
        let (l, lt) = build_side(&arena, Some(&pool), "t");
        let (r, rt) = build_side(&arena, Some(&pool), "mi");
        let jm = builder.join_map(&lt, &rt);
        let joined = tagged_join_par(&ts, &l, &r, &lk, &rk, &jm, &arena, &pool).unwrap();
        assert_eq!(
            fingerprint(&joined),
            serial_fp,
            "{workers} workers: tag slices diverged"
        );
        let tuples: Vec<Vec<u32>> = (0..joined.num_tuples())
            .map(|i| joined.relation().tuple(i))
            .collect();
        assert_eq!(
            tuples, serial_tuples,
            "{workers} workers: tuple order diverged"
        );
        assert_eq!(pool.outstanding(), 0);
    }
}

/// Injected eval failure mid-parallel-filter: a type error (Str column
/// compared to an Int literal) that only surfaces inside worker tasks.
/// No buffer may be stranded in the session arena or **any** worker
/// arena.
#[test]
fn injected_eval_failure_strands_nothing_in_worker_arenas() {
    let ts = tset();
    // First disjunct healthy, second fails at evaluation time.
    let bad = PredicateTree::build(&or(vec![
        col("t", "year").gt(1950i64),
        col("t", "name").gt(5i64),
    ]));
    let builder = TagMapBuilder::new(&bad, TagMapStrategy::Generalized { use_closure: true });
    let map = builder.filter_map(bad.root(), &[basilisk_core::Tag::empty()]);

    for workers in [2, 3, 8] {
        let pool = WorkerPool::new(workers).with_morsel_rows(64);
        let arena = MaskArena::new();
        let input = TaggedRelation::base_in(IdxRelation::base_in("t", ROWS, &arena), &arena);
        let err = tagged_filter_par(&ts, &input, &bad, &map, &arena, &pool);
        assert!(err.is_err(), "type mismatch must fail");
        input.recycle(&arena);
        assert_eq!(
            arena.outstanding(),
            0,
            "{workers} workers: session arena stranded buffers"
        );
        assert_eq!(
            pool.outstanding(),
            0,
            "{workers} workers: a worker arena stranded buffers"
        );

        // The pools still serve a healthy query afterwards.
        let good = PredicateTree::build(&or(vec![
            col("t", "year").gt(1960i64),
            col("t", "name").like("m1%"),
        ]));
        let gmap = builder_for(&good).filter_map(good.root(), &[basilisk_core::Tag::empty()]);
        let input = TaggedRelation::base_in(IdxRelation::base_in("t", ROWS, &arena), &arena);
        let out = tagged_filter_par(&ts, &input, &good, &gmap, &arena, &pool).unwrap();
        input.recycle(&arena);
        out.recycle(&arena);
        assert_eq!(arena.outstanding(), 0);
        assert_eq!(pool.outstanding(), 0);
    }
}

fn builder_for(tree: &PredicateTree) -> TagMapBuilder<'_> {
    TagMapBuilder::new(tree, TagMapStrategy::Generalized { use_closure: true })
}

/// Zero-row relations through the parallel operators.
#[test]
fn empty_relations_parallel() {
    let mut b = TableBuilder::new("title")
        .column("id", DataType::Int)
        .column("year", DataType::Int)
        .column("name", DataType::Str);
    // zero rows
    let empty = Arc::new(b.finish().unwrap());
    b = TableBuilder::new("scores")
        .column("movie_id", DataType::Int)
        .column("score", DataType::Float);
    let empty_scores = Arc::new(b.finish().unwrap());
    let ts = TableSet::from_tables(vec![("t".into(), empty), ("mi".into(), empty_scores)]);
    let tree = tree();
    let builder = builder_for(&tree);
    let pool = WorkerPool::new(4).with_morsel_rows(64);
    let arena = MaskArena::new();

    let map = builder.filter_map(tree.atom_ids()[0], &[basilisk_core::Tag::empty()]);
    let input = TaggedRelation::base_in(IdxRelation::base_in("t", 0, &arena), &arena);
    let filtered = tagged_filter_par(&ts, &input, &tree, &map, &arena, &pool).unwrap();
    assert_eq!(filtered.num_tuples(), 0);
    assert_eq!(filtered.num_slices(), 0);
    input.recycle(&arena);

    let jm = builder.join_map(
        &[basilisk_core::Tag::empty()],
        &[basilisk_core::Tag::empty()],
    );
    let l = TaggedRelation::base_in(IdxRelation::base_in("t", 0, &arena), &arena);
    let r = TaggedRelation::base_in(IdxRelation::base_in("mi", 0, &arena), &arena);
    let joined = tagged_join_par(
        &ts,
        &l,
        &r,
        &ColumnRef::new("t", "id"),
        &ColumnRef::new("mi", "movie_id"),
        &jm,
        &arena,
        &pool,
    )
    .unwrap();
    assert_eq!(joined.num_tuples(), 0);
    l.recycle(&arena);
    r.recycle(&arena);
    filtered.recycle(&arena);
    joined.recycle(&arena);
    assert_eq!(arena.outstanding(), 0);
    assert_eq!(pool.outstanding(), 0);
}
