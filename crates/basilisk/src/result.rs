//! Materialized query results with terminal-friendly rendering.

use std::sync::Arc;

use basilisk_expr::ColumnRef;
use basilisk_plan::{PlanTimings, PlannerKind};
use basilisk_storage::Column;

/// The result of [`Database::sql`](crate::Database::sql): materialized
/// projection columns plus planner/timing metadata. Columns are
/// `Arc`-shared with the session's value pool, which reclaims their
/// buffers once the result is dropped.
pub struct SqlResult {
    pub columns: Vec<(ColumnRef, Arc<Column>)>,
    pub row_count: usize,
    /// The planner that was requested.
    pub planner: PlannerKind,
    /// For TCombined, the winning subplanner.
    pub chosen: Option<PlannerKind>,
    pub timings: PlanTimings,
}

impl SqlResult {
    /// Adopt a serving-layer result (same shape, minus the cache-hit
    /// flag, which [`Database`](crate::Database) callers read from
    /// [`Database::serve_stats`](crate::Database::serve_stats)).
    pub fn from_serve(r: basilisk_serve::ServeResult) -> SqlResult {
        SqlResult {
            columns: r.columns,
            row_count: r.row_count,
            planner: r.planner,
            chosen: r.chosen,
            timings: r.timings,
        }
    }

    /// Render up to `limit` rows as an ASCII table.
    pub fn to_table_string(&self, limit: usize) -> String {
        if self.columns.is_empty() {
            return format!("({} rows)\n", self.row_count);
        }
        let shown = self.row_count.min(limit);
        let headers: Vec<String> = self
            .columns
            .iter()
            .map(|(c, _)| {
                if c.table.is_empty() {
                    c.column.clone()
                } else {
                    format!("{c}")
                }
            })
            .collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            cells.push(
                self.columns
                    .iter()
                    .map(|(_, col)| col.value(i).to_string())
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let sep = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = sep(&widths);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |"));
        }
        out.push('\n');
        out.push_str(&sep(&widths));
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep(&widths));
        if shown < self.row_count {
            out.push_str(&format!(
                "({} rows, showing first {shown})\n",
                self.row_count
            ));
        } else {
            out.push_str(&format!("({} rows)\n", self.row_count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basilisk_storage::Column;

    fn sample() -> SqlResult {
        SqlResult {
            columns: vec![
                (
                    ColumnRef::new("t", "id"),
                    Arc::new(Column::from_ints(vec![1, 2, 3])),
                ),
                (
                    ColumnRef::new("t", "name"),
                    Arc::new(Column::from_strs(&["a", "longer name", "c"])),
                ),
            ],
            row_count: 3,
            planner: PlannerKind::TCombined,
            chosen: Some(PlannerKind::TPushdown),
            timings: PlanTimings::default(),
        }
    }

    #[test]
    fn renders_aligned_table() {
        let s = sample().to_table_string(10);
        assert!(s.contains("| t.id | t.name        |"), "{s}");
        assert!(s.contains("| 1    | 'a'           |"), "{s}");
        assert!(s.contains("(3 rows)"), "{s}");
    }

    #[test]
    fn truncates_at_limit() {
        let s = sample().to_table_string(2);
        assert!(s.contains("showing first 2"), "{s}");
        assert!(!s.contains("| 3"), "{s}");
    }

    #[test]
    fn count_only_results() {
        let r = SqlResult {
            columns: vec![],
            row_count: 42,
            planner: PlannerKind::BDisj,
            chosen: None,
            timings: PlanTimings::default(),
        };
        assert_eq!(r.to_table_string(10), "(42 rows)\n");
    }
}
