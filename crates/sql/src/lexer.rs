//! The SQL lexer.

use basilisk_types::{BasiliskError, Result};

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier (already lower-cased; SQL identifiers here are
    /// case-insensitive).
    Ident(String),
    /// `'…'` string literal (embedded `''` unescaped to `'`).
    Str(String),
    Int(i64),
    Float(f64),
    // Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Int(_) | TokenKind::Float(_) => "number".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

fn err(message: impl Into<String>, offset: usize) -> BasiliskError {
    BasiliskError::Parse {
        message: message.into(),
        offset,
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'<' => {
                let kind = match bytes.get(i + 1) {
                    Some(b'=') => {
                        i += 2;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        i += 2;
                        TokenKind::Ne
                    }
                    _ => {
                        i += 1;
                        TokenKind::Lt
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            b'>' => {
                let kind = if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err("unexpected `!`", start));
                }
            }
            b'\'' => {
                // String literal with `''` escapes.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // copy the full UTF-8 character
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| err("invalid UTF-8 in string", i))?,
                        );
                        i += ch_len;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &sql[i..j];
                let kind =
                    if is_float {
                        TokenKind::Float(
                            text.parse()
                                .map_err(|_| err(format!("bad float literal {text}"), start))?,
                        )
                    } else {
                        TokenKind::Int(text.parse().map_err(|_| {
                            err(format!("integer literal {text} out of range"), start)
                        })?)
                    };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[i..j].to_ascii_lowercase()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(err(
                    format!("unexpected character `{}`", other as char),
                    start,
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: sql.len(),
    });
    Ok(tokens)
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM t"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Star,
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.25 0.5"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Float(0.5),
                TokenKind::Eof
            ]
        );
        // Dot after integer without digits is a Dot token (t.1 is invalid
        // anyway, but 7. should not eat the dot).
        assert_eq!(
            kinds("7.x"),
            vec![
                TokenKind::Int(7),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'7.0' 'it''s' ''"),
            vec![
                TokenKind::Str("7.0".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Str("".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("'wörld'"),
            vec![TokenKind::Str("wörld".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(
            kinds("Title mi_IDX _x a1"),
            vec![
                TokenKind::Ident("title".into()),
                TokenKind::Ident("mi_idx".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("a1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment here\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_with_offsets() {
        let e = tokenize("a 'unterminated").unwrap_err();
        assert!(e.to_string().contains("byte 2"), "{e}");
        let e = tokenize("a ! b").unwrap_err();
        assert!(e.to_string().contains("`!`"), "{e}");
        let e = tokenize("a # b").unwrap_err();
        assert!(e.to_string().contains("unexpected character"), "{e}");
    }
}
