//! Property tests for the storage layer: arbitrary columns survive the
//! disk round-trip bit-for-bit, selective reads agree with full scans
//! under both read policies, and bitmap algebra obeys set laws.

use std::sync::Arc;

use basilisk_storage::{Column, ColumnBuilder, DiskColumn, LfuPageCache, Table};
use basilisk_types::{Bitmap, DataType, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cell {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

fn column_strategy() -> impl Strategy<Value = (DataType, Vec<Cell>)> {
    let dtype = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Str),
        Just(DataType::Bool),
    ];
    dtype.prop_flat_map(|dt| {
        let cell = match dt {
            DataType::Int => prop_oneof![
                1 => Just(Cell::Null),
                8 => any::<i64>().prop_map(Cell::Int)
            ]
            .boxed(),
            DataType::Float => prop_oneof![
                1 => Just(Cell::Null),
                8 => (-1e12f64..1e12).prop_map(Cell::Float)
            ]
            .boxed(),
            DataType::Str => prop_oneof![
                1 => Just(Cell::Null),
                8 => "[a-zA-Z0-9 '%_]{0,40}".prop_map(Cell::Str)
            ]
            .boxed(),
            DataType::Bool => prop_oneof![
                1 => Just(Cell::Null),
                8 => any::<bool>().prop_map(Cell::Bool)
            ]
            .boxed(),
        };
        proptest::collection::vec(cell, 0..400).prop_map(move |cells| (dt, cells))
    })
}

fn build(dt: DataType, cells: &[Cell]) -> Column {
    let mut b = ColumnBuilder::new(dt);
    for c in cells {
        let v = match c {
            Cell::Null => Value::Null,
            Cell::Int(i) => Value::Int(*i),
            Cell::Float(f) => Value::Float(*f),
            Cell::Str(s) => Value::Str(s.clone()),
            Cell::Bool(x) => Value::Bool(*x),
        };
        b.push(v).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any column written to the paged disk format reads back equal, both
    /// via full scan and via selective page reads.
    #[test]
    fn disk_roundtrip((dt, cells) in column_strategy(), sel_seed in any::<u64>()) {
        let col = build(dt, &cells);
        let dir = std::env::temp_dir().join(format!(
            "basilisk-prop-{}-{}",
            std::process::id(),
            sel_seed
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.col");
        DiskColumn::write(&path, &col).unwrap();
        let cache = Arc::new(LfuPageCache::new(8));
        let disk = DiskColumn::open(&path, cache).unwrap();
        prop_assert_eq!(disk.len(), col.len());
        let scanned = disk.scan().unwrap();
        prop_assert_eq!(&scanned, &col);

        // Pseudo-random selection driven by the seed.
        let mut bm = Bitmap::new(col.len());
        let mut x = sel_seed | 1;
        for i in 0..col.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x >> 60 < 6 {
                bm.set(i);
            }
        }
        let selected = disk.read_selected(&bm).unwrap();
        let indices = bm.to_indices();
        prop_assert_eq!(selected.len(), indices.len());
        for (j, &i) in indices.iter().enumerate() {
            prop_assert_eq!(selected.value(j), col.value(i as usize));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Table-level selective reads agree across the sequential and the
    /// per-page policy regardless of threshold.
    #[test]
    fn read_policies_agree((dt, cells) in column_strategy(), bits in proptest::collection::vec(any::<bool>(), 0..400)) {
        prop_assume!(!cells.is_empty());
        let col = build(dt, &cells);
        let n = col.len();
        let table = Table::from_columns("t", vec![("c".into(), col)]).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "basilisk-prop-tbl-{}-{}",
            std::process::id(),
            bits.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        table.save(&dir).unwrap();
        let cache = Arc::new(LfuPageCache::new(4));
        let loaded = Table::load(&dir, cache).unwrap();
        let handle = loaded.column("c").unwrap();
        let mut bm = Bitmap::new(n);
        for (i, &b) in bits.iter().take(n).enumerate() {
            if b {
                bm.set(i);
            }
        }
        let sequential = handle.read_selected(&bm, 0.0).unwrap(); // always scan
        let paged = handle.read_selected(&bm, 1.1).unwrap(); // always pages
        prop_assert_eq!(sequential, paged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Bitmap algebra: De Morgan and inclusion laws hold for arbitrary
    /// bitmaps.
    #[test]
    fn bitmap_laws(a_bits in proptest::collection::vec(any::<bool>(), 1..300), b_seed in any::<u64>()) {
        let n = a_bits.len();
        let a = Bitmap::from_bools(&a_bits);
        let mut b = Bitmap::new(n);
        let mut x = b_seed | 1;
        for i in 0..n {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if x & 1 == 1 {
                b.set(i);
            }
        }
        // De Morgan: !(a ∪ b) == !a ∩ !b
        let mut lhs = a.union(&b);
        lhs.negate();
        let mut na = a.clone();
        na.negate();
        let mut nb = b.clone();
        nb.negate();
        let rhs = na.intersect(&nb);
        prop_assert_eq!(lhs.to_indices(), rhs.to_indices());
        // Inclusion: a∩b ⊆ a ⊆ a∪b; difference disjoint from subtrahend.
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        prop_assert!(a.difference(&b).is_disjoint(&b));
        // Counting: |a| + |b| == |a∪b| + |a∩b|
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.union(&b).count_ones() + a.intersect(&b).count_ones()
        );
    }
}
