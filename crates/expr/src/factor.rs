//! Common-conjunct factoring (§5.1).
//!
//! To build the BPushConj-comparable form of each benchmark query, the
//! paper "searched for common predicate subexpressions that were children
//! to every root clause in a query and pulled out those predicate
//! subexpressions to create an equivalent predicate expression with an AND
//! root node (e.g. (A∧B∧C) ∨ (A∧B∧D) would be transformed into
//! A∧B∧(C∨D))". This module implements that rewrite.

use crate::expr::Expr;

/// Factor subexpressions common to every root clause out of an OR-rooted
/// expression. Returns the (semantically equivalent) factored expression;
/// expressions without an OR root or without common conjuncts are returned
/// unchanged.
pub fn factor_common_conjuncts(expr: &Expr) -> Expr {
    let Expr::Or(clauses) = expr else {
        return expr.clone();
    };
    // Each root clause as a list of conjuncts (a non-AND clause is a
    // single conjunct).
    let conjunct_lists: Vec<Vec<&Expr>> = clauses
        .iter()
        .map(|c| match c {
            Expr::And(cs) => cs.iter().collect(),
            other => vec![other],
        })
        .collect();

    // Common = conjuncts present (structurally) in every clause, keeping
    // the first clause's order.
    let common: Vec<&Expr> = conjunct_lists[0]
        .iter()
        .copied()
        .filter(|c| conjunct_lists[1..].iter().all(|list| list.contains(c)))
        .collect();
    if common.is_empty() {
        return expr.clone();
    }

    // Residual of each clause after removing the common conjuncts.
    let mut residuals: Vec<Expr> = Vec::with_capacity(conjunct_lists.len());
    let mut any_empty = false;
    for list in &conjunct_lists {
        let rest: Vec<Expr> = list
            .iter()
            .filter(|c| !common.contains(c))
            .map(|c| (*c).clone())
            .collect();
        match rest.len() {
            0 => {
                // This clause is exactly the common part: the OR of
                // residuals is a tautology given the common part, so the
                // whole expression reduces to AND(common).
                any_empty = true;
                break;
            }
            1 => residuals.push(rest.into_iter().next().unwrap()),
            _ => residuals.push(Expr::And(rest)),
        }
    }

    let mut out: Vec<Expr> = common.into_iter().cloned().collect();
    if !any_empty {
        // Dedupe identical residuals: (A∧C)∨(A∧C) → A∧C.
        let mut unique: Vec<Expr> = Vec::new();
        for r in residuals {
            if !unique.contains(&r) {
                unique.push(r);
            }
        }
        if unique.len() == 1 {
            out.push(unique.into_iter().next().unwrap());
        } else {
            out.push(Expr::Or(unique));
        }
    }
    if out.len() == 1 {
        out.into_iter().next().unwrap()
    } else {
        Expr::And(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{and, col, or};

    #[test]
    fn paper_example() {
        // (A∧B∧C) ∨ (A∧B∧D) → A∧B∧(C∨D)
        let a = || col("t", "a").gt(1i64);
        let b = || col("t", "b").gt(2i64);
        let c = || col("t", "c").gt(3i64);
        let d = || col("t", "d").gt(4i64);
        let e = or(vec![and(vec![a(), b(), c()]), and(vec![a(), b(), d()])]);
        let f = factor_common_conjuncts(&e);
        assert_eq!(f, and(vec![a(), b(), or(vec![c(), d()])]));
    }

    #[test]
    fn no_common_conjuncts_unchanged() {
        let e = or(vec![
            and(vec![col("t", "a").gt(1i64), col("t", "b").gt(2i64)]),
            and(vec![col("t", "c").gt(3i64), col("t", "d").gt(4i64)]),
        ]);
        assert_eq!(factor_common_conjuncts(&e), e);
    }

    #[test]
    fn non_or_root_unchanged() {
        let e = and(vec![col("t", "a").gt(1i64), col("t", "b").gt(2i64)]);
        assert_eq!(factor_common_conjuncts(&e), e);
        let e = col("t", "a").gt(1i64);
        assert_eq!(factor_common_conjuncts(&e), e);
    }

    #[test]
    fn clause_equal_to_common_absorbs() {
        // (A∧B) ∨ (A∧B∧C) = A∧B
        let a = || col("t", "a").gt(1i64);
        let b = || col("t", "b").gt(2i64);
        let c = || col("t", "c").gt(3i64);
        let e = or(vec![and(vec![a(), b()]), and(vec![a(), b(), c()])]);
        assert_eq!(factor_common_conjuncts(&e), and(vec![a(), b()]));
    }

    #[test]
    fn bare_atom_clause() {
        // A ∨ (A∧C) = A
        let a = || col("t", "a").gt(1i64);
        let c = || col("t", "c").gt(3i64);
        let e = or(vec![a(), and(vec![a(), c()])]);
        assert_eq!(factor_common_conjuncts(&e), a());
    }

    #[test]
    fn complex_common_subexpression() {
        // Common conjunct can itself be an OR.
        let shared = || or(vec![col("t", "k").eq(1i64), col("t", "k").eq(2i64)]);
        let c = || col("t", "c").gt(3i64);
        let d = || col("t", "d").gt(4i64);
        let e = or(vec![and(vec![shared(), c()]), and(vec![shared(), d()])]);
        let f = factor_common_conjuncts(&e);
        assert_eq!(f, and(vec![shared(), or(vec![c(), d()])]));
    }

    #[test]
    fn three_clauses() {
        let a = || col("t", "a").gt(1i64);
        let x = || col("t", "x").gt(1i64);
        let y = || col("t", "y").gt(1i64);
        let z = || col("t", "z").gt(1i64);
        let e = or(vec![
            and(vec![a(), x()]),
            and(vec![a(), y()]),
            and(vec![a(), z()]),
        ]);
        let f = factor_common_conjuncts(&e);
        assert_eq!(f, and(vec![a(), or(vec![x(), y(), z()])]));
    }

    #[test]
    fn duplicate_residuals_dedupe() {
        let a = || col("t", "a").gt(1i64);
        let c = || col("t", "c").gt(3i64);
        let e = or(vec![and(vec![a(), c()]), and(vec![a(), c()])]);
        assert_eq!(factor_common_conjuncts(&e), and(vec![a(), c()]));
    }
}
